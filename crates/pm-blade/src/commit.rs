//! Group commit: batched writes and the per-partition commit queue.
//!
//! Concurrent writers to the same partition coalesce into *commit
//! groups*: each writer enqueues a [`Ticket`] and then races for the
//! partition's commit mutex. The winner (the **leader**) drains the
//! queue, appends every queued operation to the WAL in one pass,
//! applies them to the memtable under a single partition write lock,
//! and marks every ticket done *before* releasing the commit mutex —
//! so a follower that subsequently wins the mutex observes its ticket
//! completed and returns without doing any work. No condition variable
//! is needed: a follower either finds its ticket done, or becomes the
//! next leader itself.
//!
//! Lock hierarchy (documented in DESIGN.md): commit mutex (per
//! partition) → WAL mutex → partition `RwLock`. The leader never holds
//! two of these except in that order, and never holds two partition
//! locks at once.

use std::sync::Arc;

use parking_lot::Mutex;
use sim::{Counter, SimDuration};

use crate::engine::DbError;
use crate::telemetry::{MetricKey, MetricsRegistry, TraceContext, TraceSpan};

/// One write operation inside a [`WriteBatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOp {
    Put { key: Vec<u8>, value: Vec<u8> },
    Delete { key: Vec<u8> },
}

impl BatchOp {
    pub fn key(&self) -> &[u8] {
        match self {
            BatchOp::Put { key, .. } | BatchOp::Delete { key } => key,
        }
    }
}

/// An ordered set of writes applied atomically *per partition*: all
/// operations routed to one partition become visible to readers in a
/// single step (one memtable apply under the partition's write lock,
/// with the batch's sequence range published only afterwards). A batch
/// spanning several partitions is applied partition-by-partition in
/// ascending id order; cross-partition atomicity is not guaranteed.
#[derive(Clone, Debug, Default)]
pub struct WriteBatch {
    pub(crate) ops: Vec<BatchOp>,
}

impl WriteBatch {
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queue an insert/update.
    pub fn put(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(BatchOp::Put {
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Queue a tombstone.
    pub fn delete(&mut self, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(BatchOp::Delete { key: key.into() });
        self
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One writer's stake in a commit group. The leader fills `result` and
/// then raises `done` (with release ordering) before it releases the
/// commit mutex; the owning writer spins on the mutex/`done` pair, so
/// there is no lost-wakeup window.
pub(crate) struct Ticket {
    pub(crate) ops: Vec<BatchOp>,
    /// Trace context of the submitting writer (sampled requests only).
    /// The leader reads it to attribute this ticket's share of the
    /// group's WAL/apply work and to tag triggered maintenance.
    pub(crate) trace: Option<TraceContext>,
    /// Stage spans the leader attributed to this ticket (filled before
    /// `complete`, drained by the submitter after `take_result`).
    pub(crate) stages: Mutex<Vec<TraceSpan>>,
    done: std::sync::atomic::AtomicBool,
    result: Mutex<Option<Result<SimDuration, DbError>>>,
}

impl Ticket {
    pub(crate) fn new(ops: Vec<BatchOp>, trace: Option<TraceContext>) -> Self {
        Ticket {
            ops,
            trace,
            stages: Mutex::new(Vec::new()),
            done: std::sync::atomic::AtomicBool::new(false),
            result: Mutex::new(None),
        }
    }

    /// Drain the leader-attributed stage spans (submitter side; safe
    /// after `take_result` because `done` was published with release
    /// ordering).
    pub(crate) fn take_stages(&self) -> Vec<TraceSpan> {
        std::mem::take(&mut *self.stages.lock())
    }

    pub(crate) fn is_done(&self) -> bool {
        self.done.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Store the outcome and publish completion.
    pub(crate) fn complete(&self, result: Result<SimDuration, DbError>) {
        *self.result.lock() = Some(result);
        self.done.store(true, std::sync::atomic::Ordering::Release);
    }

    pub(crate) fn take_result(&self) -> Result<SimDuration, DbError> {
        self.result
            .lock()
            .take()
            .unwrap_or_else(|| Err(DbError::Commit("ticket completed without a result".into())))
    }
}

/// Per-partition group-commit metric handles, pre-registered at
/// `Db::open` so leaders record without touching the registry locks
/// (and so the counters appear in snapshots even while still zero).
pub(crate) struct CommitMetrics {
    /// Commit groups this partition's leaders flushed.
    pub(crate) group_commits: Arc<Counter>,
    /// Write operations that rode in those groups.
    pub(crate) grouped_writes: Arc<Counter>,
}

impl CommitMetrics {
    pub(crate) fn register(registry: &MetricsRegistry, partition: usize) -> Self {
        CommitMetrics {
            group_commits: registry.counter(MetricKey::partition("group_commits", partition)),
            grouped_writes: registry.counter(MetricKey::partition("grouped_writes", partition)),
        }
    }
}

/// Per-partition group-commit state.
pub(crate) struct Committer {
    /// Tickets waiting to be committed.
    pub(crate) queue: Mutex<Vec<std::sync::Arc<Ticket>>>,
    /// Held by the current leader for the duration of one group commit
    /// (including any memtable flush it triggers).
    pub(crate) commit: Mutex<()>,
    /// This partition's group-commit counters.
    pub(crate) metrics: CommitMetrics,
}

impl Committer {
    pub(crate) fn new(metrics: CommitMetrics) -> Self {
        Committer {
            queue: Mutex::new(Vec::new()),
            commit: Mutex::new(()),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_orders_ops() {
        let mut b = WriteBatch::new();
        b.put(&b"a"[..], &b"1"[..])
            .delete(&b"b"[..])
            .put(&b"a"[..], &b"2"[..]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.ops[0].key(), b"a");
        assert_eq!(b.ops[1], BatchOp::Delete { key: b"b".to_vec() });
        assert_eq!(
            b.ops[2],
            BatchOp::Put {
                key: b"a".to_vec(),
                value: b"2".to_vec()
            }
        );
    }

    #[test]
    fn commit_metrics_register_per_partition() {
        let registry = MetricsRegistry::new();
        let m = CommitMetrics::register(&registry, 3);
        m.group_commits.incr();
        m.grouped_writes.add(5);
        assert_eq!(
            registry
                .counter(MetricKey::partition("group_commits", 3))
                .get(),
            1
        );
        assert_eq!(
            registry
                .counter(MetricKey::partition("grouped_writes", 3))
                .get(),
            5
        );
    }

    #[test]
    fn ticket_completion_is_visible() {
        let t = Ticket::new(vec![], None);
        assert!(!t.is_done());
        t.complete(Ok(SimDuration::from_nanos(7)));
        assert!(t.is_done());
        assert_eq!(t.take_result().unwrap(), SimDuration::from_nanos(7));
    }
}
