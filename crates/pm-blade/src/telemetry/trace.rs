//! End-to-end request tracing: sampling, per-stage attribution, and
//! the slow-query flight recorder.
//!
//! A [`TraceContext`] names one logical request. It either originates
//! inside the engine (1-in-N sampling, see [`Tracer::sample`]) or
//! arrives over the wire (`Request::Traced`), in which case the
//! client-chosen trace id is adopted verbatim so client, server, and
//! engine logs line up. Sampled requests accumulate *stage* spans —
//! plain [`TraceSpan`]s with request-stage [`SpanKind`]s and the trace
//! id set — into a [`RequestTrace`], which the [`Tracer`] files into a
//! capped [`FlightRecorder`] ring when the request's total latency
//! meets the slow-query threshold (threshold 0 keeps every sampled
//! request).
//!
//! All durations are on the engine's virtual clock. Tracing only ever
//! *observes* the timeline (`Timeline::elapsed` deltas); it never
//! charges it, so enabling or disabling sampling cannot move a single
//! virtual latency.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sim::Counter;

use super::span::{SpanKind, TraceSpan};

/// Per-request trace identity, carried client → server → engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Non-zero id shared by every span of the trace. Wire-originated
    /// ids are chosen by the client; engine-originated ids count up
    /// from 1.
    pub trace_id: u64,
    /// Whether stage recording is on for this request. An unsampled
    /// context still propagates its id (for log correlation) but
    /// records nothing.
    pub sampled: bool,
    /// Advisory deadline on the engine's virtual clock; recorded for
    /// diagnosis, never enforced.
    pub deadline_nanos: Option<u64>,
}

impl TraceContext {
    /// A sampled context with no deadline.
    pub fn sampled(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            sampled: true,
            deadline_nanos: None,
        }
    }
}

/// Which public operation a trace covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    Get,
    Write,
    Scan,
}

impl TraceOp {
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceOp::Get => "get",
            TraceOp::Write => "write",
            TraceOp::Scan => "scan",
        }
    }
}

/// One completed sampled request with its stage breakdown.
///
/// Stage spans sit on the same virtual timeline as the request
/// (`start_nanos` absolute); their summed durations never exceed
/// `total_nanos` — stages are measured sub-intervals of the request,
/// not estimates.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    pub trace_id: u64,
    pub op: TraceOp,
    /// Partition the request landed on (first partition for scans).
    pub partition: usize,
    /// Virtual time when the engine picked the request up.
    pub start_nanos: u64,
    /// Full request latency as reported to the caller.
    pub total_nanos: u64,
    /// Advisory deadline from the context, if one was carried.
    pub deadline_nanos: Option<u64>,
    pub stages: Vec<TraceSpan>,
}

impl RequestTrace {
    /// Sum of the stage durations (≤ `total_nanos`).
    pub fn stage_nanos(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.end_nanos.saturating_sub(s.start_nanos))
            .sum()
    }

    /// Hand-rolled JSON object (same dialect as the metrics snapshot).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.stages.len() * 96);
        let _ = write!(
            out,
            "{{\"trace_id\": {}, \"op\": \"{}\", \"partition\": {}, \
             \"start_nanos\": {}, \"total_nanos\": {}, \"deadline_nanos\": {}, \"stages\": [",
            self.trace_id,
            self.op.as_str(),
            self.partition,
            self.start_nanos,
            self.total_nanos,
            match self.deadline_nanos {
                Some(d) => d.to_string(),
                None => "null".into(),
            }
        );
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"stage\": \"{}\", \"start_nanos\": {}, \"end_nanos\": {}, \
                 \"input_records\": {}, \"output_records\": {}}}",
                s.kind.as_str(),
                s.start_nanos,
                s.end_nanos,
                s.input_records,
                s.output_records
            );
        }
        out.push_str("]}");
        out
    }
}

/// Accumulates one sampled request's stage spans while it runs.
///
/// Offsets passed to [`StageTrace::stage`] are nanoseconds since the
/// request start (a `Timeline::elapsed` reading); spans are stored with
/// absolute virtual-clock bounds.
#[derive(Debug)]
pub struct StageTrace {
    ctx: TraceContext,
    op: TraceOp,
    partition: usize,
    start_nanos: u64,
    stages: Vec<TraceSpan>,
}

impl StageTrace {
    pub fn new(ctx: TraceContext, op: TraceOp, partition: usize, start_nanos: u64) -> Self {
        StageTrace {
            ctx,
            op,
            partition,
            start_nanos,
            stages: Vec::new(),
        }
    }

    pub fn trace_id(&self) -> u64 {
        self.ctx.trace_id
    }

    /// Record a stage spanning `[from, to]` nanos since request start.
    pub fn stage(&mut self, kind: SpanKind, from: u64, to: u64) {
        self.stage_counts(kind, from, to, 0, 0);
    }

    /// [`StageTrace::stage`] with input/output counts attached (e.g.
    /// filters checked vs filters useful).
    pub fn stage_counts(
        &mut self,
        kind: SpanKind,
        from: u64,
        to: u64,
        input_records: u64,
        output_records: u64,
    ) {
        self.stages.push(TraceSpan {
            id: 0,
            trace_id: self.ctx.trace_id,
            kind,
            partition: self.partition,
            start_nanos: self.start_nanos + from,
            end_nanos: self.start_nanos + to.max(from),
            input_records,
            output_records,
            input_bytes: 0,
            output_bytes: 0,
            value_size: 0,
            cost: None,
        });
    }

    /// Append a span already carrying absolute bounds (group-commit
    /// shares are built by the leader on the group's timeline).
    pub fn push_span(&mut self, span: TraceSpan) {
        self.stages.push(span);
    }

    pub fn finish(self, total_nanos: u64) -> RequestTrace {
        RequestTrace {
            trace_id: self.ctx.trace_id,
            op: self.op,
            partition: self.partition,
            start_nanos: self.start_nanos,
            total_nanos,
            deadline_nanos: self.ctx.deadline_nanos,
            stages: self.stages,
        }
    }
}

/// A fixed-capacity ring of recently recorded [`RequestTrace`]s.
///
/// Same semantics as the compaction-span [`super::EventRing`]: pushing
/// into a full ring evicts the oldest trace and counts the drop.
pub struct FlightRecorder {
    inner: Mutex<FlightInner>,
}

struct FlightInner {
    buf: VecDeque<RequestTrace>,
    capacity: usize,
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Mutex::new(FlightInner {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                dropped: 0,
            }),
        }
    }

    pub fn push(&self, trace: RequestTrace) {
        let mut inner = self.inner.lock();
        if inner.buf.len() >= inner.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(trace);
    }

    /// Oldest-to-newest copy of the retained traces.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Traces evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }

    /// `{"dropped": N, "traces": [...]}` for the `/debug` endpoint.
    pub fn to_json(&self) -> String {
        let (traces, dropped) = {
            let inner = self.inner.lock();
            (inner.buf.iter().cloned().collect::<Vec<_>>(), inner.dropped)
        };
        let mut out = String::with_capacity(64 + traces.len() * 256);
        let _ = write!(out, "{{\"dropped\": {dropped}, \"traces\": [");
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&t.to_json());
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FlightRecorder")
            .field("len", &inner.buf.len())
            .field("capacity", &inner.capacity)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

/// Sampling front-end plus the slow-query recorder, owned by the
/// engine core.
///
/// The sampling-off fast path ([`Tracer::sample`] with rate 0) is a
/// single branch on a pre-loaded field: no atomics, no allocation.
#[derive(Debug)]
pub struct Tracer {
    /// Sample 1 in N engine-originated requests; 0 disables sampling.
    sample_every: u64,
    /// Keep a sampled request only if its total latency is ≥ this; 0
    /// keeps every sampled request.
    slow_nanos: u64,
    ops: AtomicU64,
    ids: AtomicU64,
    recorder: FlightRecorder,
    /// Requests that recorded a stage breakdown (engine-sampled or
    /// wire-adopted).
    pub sampled_total: Arc<Counter>,
    /// Traces filed into the flight recorder (passed the slow-query
    /// threshold).
    pub recorded_total: Arc<Counter>,
}

impl Tracer {
    pub fn new(
        sample_every: u64,
        slow_nanos: u64,
        recorder_capacity: usize,
        sampled_total: Arc<Counter>,
        recorded_total: Arc<Counter>,
    ) -> Self {
        Tracer {
            sample_every,
            slow_nanos,
            ops: AtomicU64::new(0),
            ids: AtomicU64::new(0),
            recorder: FlightRecorder::new(recorder_capacity),
            sampled_total,
            recorded_total,
        }
    }

    /// Engine-originated sampling decision: every `sample_every`-th
    /// call gets a fresh sampled context.
    pub fn sample(&self) -> Option<TraceContext> {
        if self.sample_every == 0 {
            return None;
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.sample_every) {
            return None;
        }
        self.sampled_total.incr();
        Some(TraceContext::sampled(
            self.ids.fetch_add(1, Ordering::Relaxed) + 1,
        ))
    }

    /// Adopt a wire-carried context. An explicitly sampled context is
    /// honored regardless of the local sampling rate (the client
    /// already made the decision); an unsampled one records nothing.
    pub fn adopt(&self, ctx: TraceContext) -> Option<TraceContext> {
        if ctx.sampled {
            self.sampled_total.incr();
            Some(ctx)
        } else {
            None
        }
    }

    /// File a finished trace if it meets the slow-query threshold.
    pub fn finish(&self, trace: RequestTrace) {
        if trace.total_nanos >= self.slow_nanos {
            self.recorded_total.incr();
            self.recorder.push(trace);
        }
    }

    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }
}

/// Render traces as Chrome trace-event JSON, loadable in
/// `chrome://tracing` / Perfetto. One complete (`"ph": "X"`) event per
/// request plus one per stage; `pid` is the partition, `tid` the trace
/// id, timestamps are virtual-clock microseconds with nanosecond
/// precision in the fraction.
pub fn chrome_trace_json(traces: &[RequestTrace]) -> String {
    fn micros(nanos: u64) -> String {
        format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
    }
    let mut out = String::with_capacity(64 + traces.len() * 512);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    for t in traces {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"request\", \"ph\": \"X\", \
             \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \
             \"args\": {{\"trace_id\": {}, \"stage_nanos\": {}}}}}",
            t.op.as_str(),
            micros(t.start_nanos),
            micros(t.total_nanos),
            t.partition,
            t.trace_id,
            t.trace_id,
            t.stage_nanos()
        );
        for s in &t.stages {
            let _ = write!(
                out,
                ",\n{{\"name\": \"{}\", \"cat\": \"stage\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \
                 \"args\": {{\"input_records\": {}, \"output_records\": {}}}}}",
                s.kind.as_str(),
                micros(s.start_nanos),
                micros(s.end_nanos.saturating_sub(s.start_nanos)),
                s.partition,
                t.trace_id,
                s.input_records,
                s.output_records
            );
        }
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Arc<Counter> {
        Arc::new(Counter::new())
    }

    #[test]
    fn sampling_rate_picks_every_nth() {
        let t = Tracer::new(4, 0, 8, counter(), counter());
        let picks: Vec<bool> = (0..8).map(|_| t.sample().is_some()).collect();
        assert_eq!(
            picks,
            vec![true, false, false, false, true, false, false, false]
        );
        assert_eq!(t.sampled_total.get(), 2);
    }

    #[test]
    fn sampling_off_records_nothing() {
        let t = Tracer::new(0, 0, 8, counter(), counter());
        for _ in 0..100 {
            assert!(t.sample().is_none());
        }
        assert_eq!(t.sampled_total.get(), 0);
    }

    #[test]
    fn adopt_honors_the_wire_decision() {
        let t = Tracer::new(0, 0, 8, counter(), counter());
        assert!(t.adopt(TraceContext::sampled(9)).is_some());
        let unsampled = TraceContext {
            trace_id: 9,
            sampled: false,
            deadline_nanos: None,
        };
        assert!(t.adopt(unsampled).is_none());
        assert_eq!(t.sampled_total.get(), 1);
    }

    #[test]
    fn slow_threshold_filters_the_recorder() {
        let t = Tracer::new(1, 100, 8, counter(), counter());
        let fast = StageTrace::new(TraceContext::sampled(1), TraceOp::Get, 0, 0).finish(99);
        let slow = StageTrace::new(TraceContext::sampled(2), TraceOp::Get, 0, 0).finish(100);
        t.finish(fast);
        t.finish(slow);
        let kept = t.recorder().snapshot();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].trace_id, 2);
        assert_eq!(t.recorded_total.get(), 1);
    }

    #[test]
    fn recorder_ring_evicts_oldest() {
        let r = FlightRecorder::new(2);
        for id in 1..=4 {
            r.push(StageTrace::new(TraceContext::sampled(id), TraceOp::Write, 0, 0).finish(1));
        }
        let ids: Vec<u64> = r.snapshot().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![3, 4]);
        assert_eq!(r.dropped(), 2);
        assert!(r.to_json().starts_with("{\"dropped\": 2"));
    }

    #[test]
    fn stage_sums_stay_within_total() {
        let mut st = StageTrace::new(TraceContext::sampled(5), TraceOp::Get, 3, 1_000);
        st.stage(SpanKind::MemtableProbe, 0, 40);
        st.stage_counts(SpanKind::FilterConsult, 40, 70, 2, 1);
        st.stage(SpanKind::SsdRead, 70, 200);
        let trace = st.finish(250);
        assert_eq!(trace.stage_nanos(), 200);
        assert!(trace.stage_nanos() <= trace.total_nanos);
        assert_eq!(trace.stages[0].start_nanos, 1_000);
        assert_eq!(trace.stages[2].end_nanos, 1_200);
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let mut st = StageTrace::new(TraceContext::sampled(7), TraceOp::Get, 1, 2_500);
        st.stage(SpanKind::MemtableProbe, 0, 1_499);
        let json = chrome_trace_json(&[st.finish(1_500)]);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"get\""));
        assert!(json.contains("\"name\": \"memtable_probe\""));
        assert!(json.contains("\"ts\": 2.500"));
        assert!(json.contains("\"dur\": 1.499"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn request_trace_json_lists_stages() {
        let mut st = StageTrace::new(TraceContext::sampled(11), TraceOp::Write, 2, 10);
        st.stage(SpanKind::WalAppend, 0, 5);
        let json = st.finish(20).to_json();
        assert!(json.contains("\"trace_id\": 11"));
        assert!(json.contains("\"op\": \"write\""));
        assert!(json.contains("\"stage\": \"wal_append\""));
        assert!(json.contains("\"deadline_nanos\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
