//! The capped span ring backing `Db::compaction_log()`.

use std::collections::VecDeque;

use parking_lot::Mutex;

use super::span::TraceSpan;

/// A fixed-capacity ring of completed compaction spans.
///
/// When full, pushing evicts the *oldest* span; evictions are counted
/// so snapshots can report how much history was lost. Group-commit
/// spans are deliberately kept out of the ring (they would evict the
/// much rarer compaction spans within seconds on a write-heavy
/// workload) — they reach listeners and the metrics registry instead.
pub struct EventRing {
    inner: Mutex<Inner>,
}

struct Inner {
    buf: VecDeque<TraceSpan>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// `capacity` must be at least 1 (enforced by
    /// `OptionsBuilder::build`; a raw `Options` with 0 gets 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                dropped: 0,
            }),
        }
    }

    pub fn push(&self, span: TraceSpan) {
        let mut inner = self.inner.lock();
        if inner.buf.len() >= inner.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(span);
    }

    /// Oldest-to-newest copy of the retained spans.
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Spans evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("EventRing")
            .field("len", &inner.buf.len())
            .field("capacity", &inner.capacity)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::span::SpanKind;

    fn span(id: u64) -> TraceSpan {
        TraceSpan {
            id,
            trace_id: 0,
            kind: SpanKind::Flush,
            partition: 0,
            start_nanos: id,
            end_nanos: id + 1,
            input_records: 0,
            output_records: 0,
            input_bytes: 0,
            output_bytes: 0,
            value_size: 0,
            cost: None,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = EventRing::new(3);
        for id in 0..5 {
            ring.push(span(id));
        }
        let ids: Vec<u64> = ring.snapshot().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = EventRing::new(0);
        ring.push(span(1));
        ring.push(span(2));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.snapshot()[0].id, 2);
    }
}
