//! Tracing spans: one record per background-work episode.

use sim::SimDuration;

/// What kind of work a span covers.
///
/// The first four kinds are background-work episodes stored in the
/// engine's span ring. The remaining kinds are *request stages*: the
/// per-request breakdown recorded by the end-to-end tracer (see
/// [`crate::telemetry::trace`]) for sampled reads and writes. Stage
/// spans live only inside a [`crate::telemetry::RequestTrace`]; they
/// are never pushed to the ring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpanKind {
    /// Minor compaction: memtable frozen and flushed to level-0.
    Flush,
    /// Internal compaction: PM tables merged into a fresh sorted run.
    Internal,
    /// Major compaction: level-0 moved into the SSD levels.
    Major,
    /// One group commit (leader drain): WAL pass + memtable apply.
    GroupCommit,
    /// Stage: this write's share of the group's WAL append pass.
    WalAppend,
    /// Stage: this write's share of the group's memtable apply.
    MemtableApply,
    /// Stage: residual group-commit time spent waiting on the leader
    /// (queueing, other tickets' work, inline maintenance share).
    LeaderWait,
    /// Stage: slowdown/stall backpressure charged before the write
    /// joined the commit queue.
    ThrottleWait,
    /// Stage: the memtable probe of a point read.
    MemtableProbe,
    /// Stage: bloom-filter / fence-index consults over the PM level-0.
    FilterConsult,
    /// Stage: PM table probes served from the group-decode cache.
    PmDecodeHit,
    /// Stage: PM table probes that decoded prefix groups from PM.
    PmDecodeMiss,
    /// Stage: the SSD-level search after a PM level-0 miss.
    SsdRead,
}

impl SpanKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Flush => "flush",
            SpanKind::Internal => "internal",
            SpanKind::Major => "major",
            SpanKind::GroupCommit => "group_commit",
            SpanKind::WalAppend => "wal_append",
            SpanKind::MemtableApply => "memtable_apply",
            SpanKind::LeaderWait => "leader_wait",
            SpanKind::ThrottleWait => "throttle_wait",
            SpanKind::MemtableProbe => "memtable_probe",
            SpanKind::FilterConsult => "filter_consult",
            SpanKind::PmDecodeHit => "pm_decode_hit",
            SpanKind::PmDecodeMiss => "pm_decode_miss",
            SpanKind::SsdRead => "ssd_read",
        }
    }
}

/// A completed span. `start_nanos`/`end_nanos` are on the engine's
/// virtual clock; byte counts are measured from the device counters
/// around the work (a compaction racing on another partition can skew
/// one span's attribution but never the cumulative totals).
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Monotonically increasing id, unique within one engine. Request
    /// *stage* spans (which live inside a `RequestTrace`, not the
    /// ring) use id 0 — their identity is the trace id.
    pub id: u64,
    /// Id of the request trace this span belongs to; 0 when the work
    /// was not triggered by (or part of) a traced request.
    pub trace_id: u64,
    pub kind: SpanKind,
    pub partition: usize,
    /// Virtual time when the work started.
    pub start_nanos: u64,
    /// Virtual time when the work finished (`start + duration`).
    pub end_nanos: u64,
    /// Records read by the work (0 when nothing was there to do).
    pub input_records: u64,
    /// Records surviving into the output.
    pub output_records: u64,
    /// Device bytes read by the work.
    pub input_bytes: u64,
    /// Device bytes written by the work.
    pub output_bytes: u64,
    /// Mean value size observed at span time (for §V cost traces).
    pub value_size: u32,
    /// The cost-model verdict that triggered this work, if any.
    pub cost: Option<CostDecision>,
}

impl TraceSpan {
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.end_nanos.saturating_sub(self.start_nanos))
    }
}

/// One evaluated cost-model rule (§IV-C) with its inputs and verdict.
#[derive(Clone, Debug)]
pub enum CostDecision {
    /// Eq 1: read-amplification relief.
    ReadBenefit {
        partition: usize,
        /// `n̂_i^r`: observed reads per virtual second.
        read_rate: f64,
        /// `n_i`: unsorted PM tables.
        unsorted: usize,
        triggered: bool,
    },
    /// Eq 2: SSD write-amplification relief.
    WriteBenefit {
        partition: usize,
        /// `n_i^w`: writes in the window.
        window_writes: u64,
        /// `n_i^u`: updates (removable duplicates) in the window.
        window_updates: u64,
        /// Records the internal pass would rewrite.
        l0_records: usize,
        triggered: bool,
    },
    /// The `l0_unsorted_hard_cap` safety valve.
    HardCap {
        partition: usize,
        unsorted: usize,
        cap: usize,
        triggered: bool,
    },
    /// Eq 3: the retention knapsack at major-compaction time.
    Retention {
        /// PM bytes in use when the pass started.
        pm_used: usize,
        /// `τ_t`: the retention budget.
        budget: usize,
        /// Partitions kept in PM.
        retained: Vec<usize>,
        /// Partitions major-compacted to the SSD.
        victims: Vec<usize>,
    },
    /// The flush path's per-batch codec pick (encoding v2): which PM
    /// table codec this flush encoded with and what it wrote.
    CodecChoice {
        partition: usize,
        /// Codec name (`pmtable::CODEC_NAMES`): "prefix"/"delta"/"fixed".
        codec: &'static str,
        /// Entries flushed under the chosen codec.
        entries: usize,
        /// Encoded PM bytes the flush produced.
        pm_bytes: usize,
    },
}

impl CostDecision {
    /// Short rule name for rendering and counters.
    pub fn rule(&self) -> &'static str {
        match self {
            CostDecision::ReadBenefit { .. } => "eq1_read_benefit",
            CostDecision::WriteBenefit { .. } => "eq2_write_benefit",
            CostDecision::HardCap { .. } => "hard_cap",
            CostDecision::Retention { .. } => "eq3_retention",
            CostDecision::CodecChoice { .. } => "flush_codec_decision",
        }
    }

    /// Did the rule fire? (Retention passes and codec choices always
    /// count as fired — every flush picks *some* codec.)
    pub fn triggered(&self) -> bool {
        match self {
            CostDecision::ReadBenefit { triggered, .. }
            | CostDecision::WriteBenefit { triggered, .. }
            | CostDecision::HardCap { triggered, .. } => *triggered,
            CostDecision::Retention { .. } | CostDecision::CodecChoice { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_duration_is_end_minus_start() {
        let span = TraceSpan {
            id: 1,
            trace_id: 0,
            kind: SpanKind::Flush,
            partition: 0,
            start_nanos: 100,
            end_nanos: 350,
            input_records: 0,
            output_records: 0,
            input_bytes: 0,
            output_bytes: 0,
            value_size: 0,
            cost: None,
        };
        assert_eq!(span.duration(), SimDuration::from_nanos(250));
        assert_eq!(span.kind.as_str(), "flush");
    }

    #[test]
    fn decisions_expose_rule_and_verdict() {
        let d = CostDecision::ReadBenefit {
            partition: 2,
            read_rate: 100.0,
            unsorted: 4,
            triggered: false,
        };
        assert_eq!(d.rule(), "eq1_read_benefit");
        assert!(!d.triggered());
        let r = CostDecision::Retention {
            pm_used: 10,
            budget: 5,
            retained: vec![0],
            victims: vec![1],
        };
        assert_eq!(r.rule(), "eq3_retention");
        assert!(r.triggered());
        let c = CostDecision::CodecChoice {
            partition: 1,
            codec: "delta",
            entries: 128,
            pm_bytes: 2048,
        };
        assert_eq!(c.rule(), "flush_codec_decision");
        assert!(c.triggered());
    }
}
