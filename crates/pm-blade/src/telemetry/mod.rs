//! Engine-wide observability: the metrics registry, tracing spans,
//! event listeners, the capped span ring, and point-in-time snapshots.
//!
//! The subsystem has four moving parts (see DESIGN.md "Observability"):
//!
//! - [`MetricsRegistry`] — named counters, gauges, and virtual-clock
//!   latency histograms, keyed by [`MetricKey`] (metric name plus
//!   optional partition and level labels). Hot paths hold pre-fetched
//!   `Arc` handles so recording a metric is one relaxed atomic op; the
//!   registry's own locks are touched only at registration and
//!   snapshot time.
//! - [`TraceSpan`] — one record per background-work episode (flush,
//!   internal compaction, major compaction, group commit) carrying
//!   start/end virtual time, input/output bytes and record counts, and
//!   the cost-model verdict ([`CostDecision`]) that triggered it.
//! - [`EventListener`] — a RocksDB-style hook trait. Implementations
//!   registered through `OptionsBuilder::add_event_listener` observe
//!   begin/complete pairs for every span plus every cost-model
//!   decision. Listeners may run with engine locks held: they must be
//!   fast, must not block, and must never call back into the `Db`.
//! - [`MetricsSnapshot`] — a serializable point-in-time view produced
//!   by `Db::metrics_snapshot()`, with [`MetricsSnapshot::delta`]
//!   support and three renderers (table, JSON, Prometheus text).
//!
//! Compaction spans are additionally retained in an [`EventRing`] — a
//! ring buffer capped at `Options::event_log_capacity` — which backs
//! the engine's `compaction_log()` accessor; when full, the oldest
//! spans are evicted and counted in `MetricsSnapshot::spans_dropped`.

pub mod listener;
pub mod registry;
pub mod ring;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use listener::{EventListener, ListenerSet};
pub use registry::{Gauge, LatencyRecorder, MetricKey, MetricsRegistry};
pub use ring::EventRing;
pub use snapshot::{HistogramSummary, MetricsSnapshot};
pub use span::{CostDecision, SpanKind, TraceSpan};
pub use trace::{
    chrome_trace_json, FlightRecorder, RequestTrace, StageTrace, TraceContext, TraceOp, Tracer,
};
