//! The metrics registry: named counters, gauges, and latency
//! histograms keyed by partition and level.
//!
//! Registration is get-or-create and returns an `Arc` handle; hot
//! paths fetch their handles once (at `Db::open`) and afterwards never
//! touch the registry's locks. Counter reads and writes are relaxed
//! atomics; histograms serialize recording through a short mutex (one
//! bucket increment under the lock).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sim::{Counter, Histogram, SimDuration};

/// Identity of one metric: a static name plus optional partition,
/// level, connection, and codec labels. Ordering is lexicographic
/// (name, partition, level, connection, codec), which gives snapshots
/// and renderers a stable order for free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MetricKey {
    pub name: &'static str,
    pub partition: Option<usize>,
    pub level: Option<usize>,
    /// Server-side connection id (the service layer labels its per-op
    /// counters with the connection that issued them).
    pub connection: Option<u64>,
    /// PM table codec name (`pmtable::CODEC_NAMES`); the flush path
    /// labels `pm_codec_chosen_total` with the codec it picked.
    pub codec: Option<&'static str>,
}

impl MetricKey {
    /// An engine-global metric.
    pub const fn global(name: &'static str) -> Self {
        MetricKey {
            name,
            partition: None,
            level: None,
            connection: None,
            codec: None,
        }
    }

    /// A per-partition metric.
    pub const fn partition(name: &'static str, partition: usize) -> Self {
        MetricKey {
            name,
            partition: Some(partition),
            level: None,
            connection: None,
            codec: None,
        }
    }

    /// A per-partition, per-level metric (level is 0 for the level-0,
    /// 1-based for the SSD levels).
    pub const fn level(name: &'static str, partition: usize, level: usize) -> Self {
        MetricKey {
            name,
            partition: Some(partition),
            level: Some(level),
            connection: None,
            codec: None,
        }
    }

    /// A per-connection metric (server op counters).
    pub const fn connection(name: &'static str, connection: u64) -> Self {
        MetricKey {
            name,
            partition: None,
            level: None,
            connection: Some(connection),
            codec: None,
        }
    }

    /// A per-codec metric (flush codec decisions).
    pub const fn codec(name: &'static str, codec: &'static str) -> Self {
        MetricKey {
            name,
            partition: None,
            level: None,
            connection: None,
            codec: Some(codec),
        }
    }

    /// Prometheus-style label suffix: `{partition="0",level="1"}`, or
    /// the empty string for a global metric.
    pub fn label_string(&self) -> String {
        let mut parts = Vec::new();
        if let Some(p) = self.partition {
            parts.push(format!("partition=\"{p}\""));
        }
        if let Some(l) = self.level {
            parts.push(format!("level=\"{l}\""));
        }
        if let Some(c) = self.connection {
            parts.push(format!("connection=\"{c}\""));
        }
        if let Some(codec) = self.codec {
            parts.push(format!("codec=\"{codec}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.name, self.label_string())
    }
}

/// A point-in-time signed value (PM usage, memtable size, …).
#[derive(Default, Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A latency histogram safe to record from `&self`.
///
/// Wraps the virtual-clock [`Histogram`] in a mutex: recording is one
/// bucket increment under the lock, cheap enough for the foreground
/// paths at this reproduction's scale.
#[derive(Default, Debug)]
pub struct LatencyRecorder {
    hist: Mutex<Histogram>,
}

impl LatencyRecorder {
    pub fn record(&self, d: SimDuration) {
        self.hist.lock().record_duration(d);
    }

    pub fn record_nanos(&self, nanos: u64) {
        self.hist.lock().record(nanos);
    }

    /// A copy of the underlying histogram.
    pub fn histogram(&self) -> Histogram {
        self.hist.lock().clone()
    }
}

/// The registry proper.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<LatencyRecorder>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter registered under `key`.
    pub fn counter(&self, key: MetricKey) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(&key) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Register an externally-owned counter under `key` (used to absorb
    /// the `EngineStats` counters). Replaces any previous registration.
    pub fn register_counter(&self, key: MetricKey, counter: Arc<Counter>) {
        self.counters.write().insert(key, counter);
    }

    /// Get or create the gauge registered under `key`.
    pub fn gauge(&self, key: MetricKey) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(&key) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Get or create the latency histogram registered under `key`.
    pub fn histogram(&self, key: MetricKey) -> Arc<LatencyRecorder> {
        if let Some(h) = self.histograms.read().get(&key) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(LatencyRecorder::default())),
        )
    }

    /// Read every registered metric.
    #[allow(clippy::type_complexity)]
    pub fn collect(
        &self,
    ) -> (
        BTreeMap<MetricKey, u64>,
        BTreeMap<MetricKey, i64>,
        BTreeMap<MetricKey, Histogram>,
    ) {
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, c)| (*k, c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, g)| (*k, g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, h)| (*k, h.histogram()))
            .collect();
        (counters, gauges, histograms)
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .field("histograms", &self.histograms.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter(MetricKey::global("x"));
        let b = reg.counter(MetricKey::global("x"));
        a.add(3);
        b.incr();
        assert_eq!(reg.counter(MetricKey::global("x")).get(), 4);
        // A different label is a different counter.
        assert_eq!(reg.counter(MetricKey::partition("x", 0)).get(), 0);
    }

    #[test]
    fn registered_external_counter_is_visible() {
        let reg = MetricsRegistry::new();
        let external = Arc::new(Counter::new());
        external.add(7);
        reg.register_counter(MetricKey::global("ext"), Arc::clone(&external));
        assert_eq!(reg.counter(MetricKey::global("ext")).get(), 7);
        external.incr();
        let (counters, _, _) = reg.collect();
        assert_eq!(counters[&MetricKey::global("ext")], 8);
    }

    #[test]
    fn gauges_and_histograms_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.gauge(MetricKey::global("g")).set(-5);
        assert_eq!(reg.gauge(MetricKey::global("g")).get(), -5);
        let h = reg.histogram(MetricKey::global("lat"));
        h.record(SimDuration::from_micros(3));
        h.record_nanos(1_000);
        assert_eq!(h.histogram().count(), 2);
    }

    #[test]
    fn keys_order_and_render_stably() {
        let a = MetricKey::global("alpha");
        let b = MetricKey::partition("alpha", 1);
        let c = MetricKey::level("alpha", 1, 2);
        assert!(a < b && b < c);
        assert_eq!(a.label_string(), "");
        assert_eq!(b.label_string(), "{partition=\"1\"}");
        assert_eq!(c.label_string(), "{partition=\"1\",level=\"2\"}");
        assert_eq!(c.to_string(), "alpha{partition=\"1\",level=\"2\"}");
        let d = MetricKey::connection("alpha", 3);
        assert!(a < d, "connection-labeled keys sort after global");
        assert_eq!(d.label_string(), "{connection=\"3\"}");
        let e = MetricKey::codec("alpha", "delta");
        assert!(a < e, "codec-labeled keys sort after global");
        assert_eq!(e.label_string(), "{codec=\"delta\"}");
        assert_eq!(e.to_string(), "alpha{codec=\"delta\"}");
    }
}
