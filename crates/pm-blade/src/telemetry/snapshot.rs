//! Point-in-time metric snapshots and their renderers.

use std::collections::BTreeMap;

use sim::Histogram;

use super::registry::MetricKey;
use super::span::{CostDecision, TraceSpan};

/// Digest of one latency histogram (all values in virtual nanoseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum_nanos: u128,
    pub mean_nanos: u64,
    pub min_nanos: u64,
    pub p50_nanos: u64,
    pub p95_nanos: u64,
    pub p99_nanos: u64,
    pub max_nanos: u64,
}

impl HistogramSummary {
    pub fn from_histogram(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            sum_nanos: h.sum(),
            mean_nanos: h.mean() as u64,
            min_nanos: h.min(),
            p50_nanos: h.quantile(0.5),
            p95_nanos: h.quantile(0.95),
            p99_nanos: h.quantile(0.99),
            max_nanos: h.max(),
        }
    }
}

/// A serializable point-in-time view of every registered metric plus
/// the retained compaction spans.
///
/// Counters are cumulative and monotone; gauges are instantaneous;
/// histogram summaries are cumulative since open ([`Self::delta`]
/// subtracts counters but keeps the later histograms whole — bucket
/// subtraction is not supported). Produced by `Db::metrics_snapshot()`.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Virtual clock (nanoseconds since origin) when taken.
    pub at_nanos: u64,
    pub counters: BTreeMap<MetricKey, u64>,
    pub gauges: BTreeMap<MetricKey, i64>,
    pub histograms: BTreeMap<MetricKey, HistogramSummary>,
    /// Retained compaction spans, oldest first.
    pub spans: Vec<TraceSpan>,
    /// Spans evicted from the ring before this snapshot.
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Assemble a snapshot from raw collections (`Db::metrics_snapshot`
    /// and tests use this; histograms are summarized here).
    pub fn from_parts(
        at_nanos: u64,
        counters: BTreeMap<MetricKey, u64>,
        gauges: BTreeMap<MetricKey, i64>,
        histograms: BTreeMap<MetricKey, Histogram>,
        spans: Vec<TraceSpan>,
        spans_dropped: u64,
    ) -> Self {
        MetricsSnapshot {
            at_nanos,
            counters,
            gauges,
            histograms: histograms
                .iter()
                .map(|(k, h)| (*k, HistogramSummary::from_histogram(h)))
                .collect(),
            spans,
            spans_dropped,
        }
    }

    /// Sum of every counter named `name`, across all labels.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// The counter at exactly `key`, or 0.
    pub fn counter_at(&self, key: &MetricKey) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Change since `earlier` (which must be an earlier snapshot of the
    /// same engine): counters are subtracted (saturating, so a metric
    /// registered between the two snapshots shows its full value),
    /// gauges and histograms keep this snapshot's values, and only
    /// spans newer than `earlier`'s newest are kept.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (*k, v.saturating_sub(earlier.counter_at(k))))
            .collect();
        let last_seen = earlier.spans.iter().map(|s| s.id).max().unwrap_or(0);
        MetricsSnapshot {
            at_nanos: self.at_nanos,
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            spans: self
                .spans
                .iter()
                .filter(|s| s.id > last_seen)
                .cloned()
                .collect(),
            spans_dropped: self.spans_dropped.saturating_sub(earlier.spans_dropped),
        }
    }

    // -----------------------------------------------------------------
    // Renderers
    // -----------------------------------------------------------------

    /// Human-readable fixed-width table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== metrics snapshot @ {} virtual ns ==", self.at_nanos);
        let _ = writeln!(out, "-- counters --");
        for (key, value) in &self.counters {
            let _ = writeln!(out, "  {:<52} {:>14}", key.to_string(), value);
        }
        let _ = writeln!(out, "-- gauges --");
        for (key, value) in &self.gauges {
            let _ = writeln!(out, "  {:<52} {:>14}", key.to_string(), value);
        }
        let _ = writeln!(
            out,
            "-- latency (virtual ns) --\n  {:<36} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "histogram", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (key, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {:<36} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                key.to_string(),
                h.count,
                h.mean_nanos,
                h.p50_nanos,
                h.p95_nanos,
                h.p99_nanos,
                h.max_nanos
            );
        }
        let _ = writeln!(
            out,
            "-- spans ({} retained, {} evicted) --",
            self.spans.len(),
            self.spans_dropped
        );
        for span in &self.spans {
            let _ = writeln!(
                out,
                "  #{:<5} {:<12} p{:<3} {:>10}ns  in {} rec/{} B  out {} rec/{} B{}",
                span.id,
                span.kind.as_str(),
                span.partition,
                span.duration().as_nanos(),
                span.input_records,
                span.input_bytes,
                span.output_records,
                span.output_bytes,
                span.cost
                    .as_ref()
                    .map(|c| format!("  [{}]", c.rule()))
                    .unwrap_or_default()
            );
        }
        out
    }

    /// JSON document (no external dependencies; all keys sorted).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"at_nanos\": {},", self.at_nanos);
        out.push_str("  \"counters\": [\n");
        let mut first = true;
        for (key, value) in &self.counters {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", {}\"value\": {}}}",
                key.name,
                json_labels(key),
                value
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [\n");
        first = true;
        for (key, value) in &self.gauges {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", {}\"value\": {}}}",
                key.name,
                json_labels(key),
                value
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [\n");
        first = true;
        for (key, h) in &self.histograms {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", {}\"count\": {}, \"sum_nanos\": {}, \
                 \"mean_nanos\": {}, \"min_nanos\": {}, \"p50_nanos\": {}, \
                 \"p95_nanos\": {}, \"p99_nanos\": {}, \"max_nanos\": {}}}",
                key.name,
                json_labels(key),
                h.count,
                h.sum_nanos,
                h.mean_nanos,
                h.min_nanos,
                h.p50_nanos,
                h.p95_nanos,
                h.p99_nanos,
                h.max_nanos
            );
        }
        out.push_str("\n  ],\n  \"spans\": [\n");
        first = true;
        for span in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"id\": {}, \"trace_id\": {}, \"kind\": \"{}\", \"partition\": {}, \
                 \"start_nanos\": {}, \"end_nanos\": {}, \
                 \"input_records\": {}, \"output_records\": {}, \
                 \"input_bytes\": {}, \"output_bytes\": {}, \
                 \"value_size\": {}, \"cost\": {}}}",
                span.id,
                span.trace_id,
                span.kind.as_str(),
                span.partition,
                span.start_nanos,
                span.end_nanos,
                span.input_records,
                span.output_records,
                span.input_bytes,
                span.output_bytes,
                span.value_size,
                cost_json(span.cost.as_ref())
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"spans_dropped\": {}\n}}\n",
            self.spans_dropped
        );
        out
    }

    /// Prometheus text exposition. Metric names get a `pmblade_`
    /// prefix; histogram summaries use `quantile` labels plus `_sum`
    /// and `_count` series. All durations are virtual nanoseconds.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut last_name = "";
        for (key, value) in &self.counters {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE pmblade_{} counter", key.name);
                last_name = key.name;
            }
            let _ = writeln!(out, "pmblade_{}{} {}", key.name, key.label_string(), value);
        }
        last_name = "";
        for (key, value) in &self.gauges {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE pmblade_{} gauge", key.name);
                last_name = key.name;
            }
            let _ = writeln!(out, "pmblade_{}{} {}", key.name, key.label_string(), value);
        }
        last_name = "";
        for (key, h) in &self.histograms {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE pmblade_{} summary", key.name);
                last_name = key.name;
            }
            for (q, v) in [
                ("0.5", h.p50_nanos),
                ("0.95", h.p95_nanos),
                ("0.99", h.p99_nanos),
            ] {
                let _ = writeln!(
                    out,
                    "pmblade_{}{} {}",
                    key.name,
                    merge_labels(key, &format!("quantile=\"{q}\"")),
                    v
                );
            }
            let _ = writeln!(
                out,
                "pmblade_{}_sum{} {}",
                key.name,
                key.label_string(),
                h.sum_nanos
            );
            let _ = writeln!(
                out,
                "pmblade_{}_count{} {}",
                key.name,
                key.label_string(),
                h.count
            );
        }
        let _ = writeln!(out, "# TYPE pmblade_spans_dropped counter");
        let _ = writeln!(out, "pmblade_spans_dropped {}", self.spans_dropped);
        out
    }
}

/// `"partition": 0, "level": 1, ` (or nulls) for JSON objects; a
/// `"connection": N` field rides along only when the label is set
/// (server-side per-connection counters).
fn json_labels(key: &MetricKey) -> String {
    let connection = match key.connection {
        Some(c) => format!("\"connection\": {c}, "),
        None => String::new(),
    };
    format!(
        "\"partition\": {}, \"level\": {}, {connection}",
        key.partition
            .map(|p| p.to_string())
            .unwrap_or_else(|| "null".into()),
        key.level
            .map(|l| l.to_string())
            .unwrap_or_else(|| "null".into()),
    )
}

/// Merge an extra label into a key's label set.
fn merge_labels(key: &MetricKey, extra: &str) -> String {
    let base = key.label_string();
    if base.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &base[..base.len() - 1])
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_usize_list(values: &[usize]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn cost_json(cost: Option<&CostDecision>) -> String {
    let Some(cost) = cost else {
        return "null".into();
    };
    match cost {
        CostDecision::ReadBenefit {
            partition,
            read_rate,
            unsorted,
            triggered,
        } => format!(
            "{{\"rule\": \"{}\", \"partition\": {}, \"read_rate\": {}, \
             \"unsorted\": {}, \"triggered\": {}}}",
            cost.rule(),
            partition,
            json_f64(*read_rate),
            unsorted,
            triggered
        ),
        CostDecision::WriteBenefit {
            partition,
            window_writes,
            window_updates,
            l0_records,
            triggered,
        } => format!(
            "{{\"rule\": \"{}\", \"partition\": {}, \"window_writes\": {}, \
             \"window_updates\": {}, \"l0_records\": {}, \"triggered\": {}}}",
            cost.rule(),
            partition,
            window_writes,
            window_updates,
            l0_records,
            triggered
        ),
        CostDecision::HardCap {
            partition,
            unsorted,
            cap,
            triggered,
        } => {
            format!(
                "{{\"rule\": \"{}\", \"partition\": {}, \"unsorted\": {}, \
                 \"cap\": {}, \"triggered\": {}}}",
                cost.rule(),
                partition,
                unsorted,
                cap,
                triggered
            )
        }
        CostDecision::Retention {
            pm_used,
            budget,
            retained,
            victims,
        } => {
            format!(
                "{{\"rule\": \"{}\", \"pm_used\": {}, \"budget\": {}, \
                 \"retained\": {}, \"victims\": {}}}",
                cost.rule(),
                pm_used,
                budget,
                json_usize_list(retained),
                json_usize_list(victims)
            )
        }
        CostDecision::CodecChoice {
            partition,
            codec,
            entries,
            pm_bytes,
        } => {
            format!(
                "{{\"rule\": \"{}\", \"partition\": {}, \"codec\": \"{}\", \
                 \"entries\": {}, \"pm_bytes\": {}}}",
                cost.rule(),
                partition,
                codec,
                entries,
                pm_bytes
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::span::SpanKind;

    fn sample() -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        counters.insert(MetricKey::global("puts"), 10);
        counters.insert(MetricKey::partition("group_commits", 0), 4);
        let mut gauges = BTreeMap::new();
        gauges.insert(MetricKey::global("pm_used_bytes"), 4096);
        let mut histograms = BTreeMap::new();
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        histograms.insert(MetricKey::global("read_latency"), h);
        let spans = vec![TraceSpan {
            id: 7,
            trace_id: 0,
            kind: SpanKind::Major,
            partition: 1,
            start_nanos: 50,
            end_nanos: 150,
            input_records: 20,
            output_records: 18,
            input_bytes: 2000,
            output_bytes: 1800,
            value_size: 100,
            cost: Some(CostDecision::Retention {
                pm_used: 900,
                budget: 600,
                retained: vec![0],
                victims: vec![1],
            }),
        }];
        MetricsSnapshot::from_parts(1_000, counters, gauges, histograms, spans, 2)
    }

    #[test]
    fn counter_lookup_sums_across_labels() {
        let mut snap = sample();
        snap.counters
            .insert(MetricKey::partition("group_commits", 1), 6);
        assert_eq!(snap.counter("group_commits"), 10);
        assert_eq!(
            snap.counter_at(&MetricKey::partition("group_commits", 0)),
            4
        );
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn delta_subtracts_counters_and_filters_spans() {
        let earlier = sample();
        let mut later = sample();
        later.counters.insert(MetricKey::global("puts"), 25);
        later.spans.push(TraceSpan {
            id: 9,
            ..later.spans[0].clone()
        });
        later.spans_dropped = 5;
        let d = later.delta(&earlier);
        assert_eq!(d.counter_at(&MetricKey::global("puts")), 15);
        assert_eq!(d.counter_at(&MetricKey::partition("group_commits", 0)), 0);
        assert_eq!(d.spans.len(), 1);
        assert_eq!(d.spans[0].id, 9);
        assert_eq!(d.spans_dropped, 3);
    }

    #[test]
    fn json_is_well_formed_enough_to_eyeball() {
        let json = sample().to_json();
        assert!(json.contains("\"at_nanos\": 1000"));
        assert!(json
            .contains("{\"name\": \"puts\", \"partition\": null, \"level\": null, \"value\": 10}"));
        assert!(json.contains("\"rule\": \"eq3_retention\""));
        assert!(json.contains("\"retained\": [0]"));
        assert!(json.contains("\"spans_dropped\": 2"));
        // Balanced braces and brackets (no nesting surprises).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn table_render_mentions_every_section() {
        let table = sample().render_table();
        for needle in [
            "-- counters --",
            "-- gauges --",
            "-- latency",
            "-- spans (1 retained, 2 evicted) --",
            "group_commits{partition=\"0\"}",
            "eq3_retention",
        ] {
            assert!(table.contains(needle), "missing {needle}:\n{table}");
        }
    }

    #[test]
    fn prometheus_summary_gets_quantiles_sum_and_count() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE pmblade_puts counter"));
        assert!(text.contains("pmblade_puts 10"));
        assert!(text.contains("pmblade_group_commits{partition=\"0\"} 4"));
        assert!(text.contains("# TYPE pmblade_read_latency summary"));
        assert!(text.contains("pmblade_read_latency{quantile=\"0.5\"}"));
        assert!(text.contains("pmblade_read_latency_sum 400"));
        assert!(text.contains("pmblade_read_latency_count 2"));
        assert!(text.contains("pmblade_spans_dropped 2"));
    }

    #[test]
    fn merged_labels_compose() {
        assert_eq!(
            merge_labels(&MetricKey::global("x"), "quantile=\"0.5\""),
            "{quantile=\"0.5\"}"
        );
        assert_eq!(
            merge_labels(&MetricKey::level("x", 2, 1), "quantile=\"0.99\""),
            "{partition=\"2\",level=\"1\",quantile=\"0.99\"}"
        );
    }
}
