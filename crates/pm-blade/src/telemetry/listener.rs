//! The pluggable event-listener hook API (RocksDB-style).

use std::sync::Arc;

use super::span::{CostDecision, SpanKind, TraceSpan};

/// Observer of engine background events.
///
/// Every hook has a no-op default so implementations override only
/// what they need. Invariants the engine guarantees:
///
/// - every `*_begin` is followed by exactly one matching `*_complete`
///   for the same partition, on the same thread, with no other begin
///   of the same kind for that partition in between (work that turns
///   out to be empty still completes, with a zero-work span);
/// - `on_compaction_begin`/`on_compaction_complete` cover
///   [`SpanKind::Internal`] and [`SpanKind::Major`]; flushes use the
///   dedicated flush hooks; group commits use `on_group_commit` only
///   (they are too frequent for begin/complete pairs);
/// - `on_cost_decision` fires for every evaluated rule, triggered or
///   not, before any compaction it triggers begins.
///
/// # Reentrancy and locking
///
/// Hooks may be invoked while the engine holds internal locks (the
/// per-partition commit mutex, and for compaction hooks a partition
/// write lock may have just been released but the commit mutex may
/// still be held). Implementations must be fast, must not block, and
/// must never call back into the `Db` — doing so can deadlock.
#[allow(unused_variables)]
pub trait EventListener: Send + Sync {
    fn on_flush_begin(&self, partition: usize) {}
    fn on_flush_complete(&self, span: &TraceSpan) {}
    fn on_compaction_begin(&self, kind: SpanKind, partition: usize) {}
    fn on_compaction_complete(&self, span: &TraceSpan) {}
    fn on_group_commit(&self, span: &TraceSpan) {}
    fn on_cost_decision(&self, decision: &CostDecision) {}
}

/// The set of listeners registered on an engine. Cloning shares the
/// listeners (they are `Arc`s), matching `Options`' clone semantics.
#[derive(Clone, Default)]
pub struct ListenerSet {
    listeners: Vec<Arc<dyn EventListener>>,
}

impl ListenerSet {
    pub fn new() -> Self {
        ListenerSet::default()
    }

    pub fn add(&mut self, listener: Arc<dyn EventListener>) {
        self.listeners.push(listener);
    }

    pub fn len(&self) -> usize {
        self.listeners.len()
    }

    pub fn is_empty(&self) -> bool {
        self.listeners.is_empty()
    }

    pub fn flush_begin(&self, partition: usize) {
        for l in &self.listeners {
            l.on_flush_begin(partition);
        }
    }

    pub fn flush_complete(&self, span: &TraceSpan) {
        for l in &self.listeners {
            l.on_flush_complete(span);
        }
    }

    pub fn compaction_begin(&self, kind: SpanKind, partition: usize) {
        for l in &self.listeners {
            l.on_compaction_begin(kind, partition);
        }
    }

    pub fn compaction_complete(&self, span: &TraceSpan) {
        for l in &self.listeners {
            l.on_compaction_complete(span);
        }
    }

    pub fn group_commit(&self, span: &TraceSpan) {
        for l in &self.listeners {
            l.on_group_commit(span);
        }
    }

    pub fn cost_decision(&self, decision: &CostDecision) {
        for l in &self.listeners {
            l.on_cost_decision(decision);
        }
    }
}

impl std::fmt::Debug for ListenerSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ListenerSet({} listeners)", self.listeners.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    struct CountingListener {
        flushes: AtomicUsize,
        decisions: AtomicUsize,
    }

    impl EventListener for CountingListener {
        fn on_flush_begin(&self, _partition: usize) {
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        fn on_cost_decision(&self, _decision: &CostDecision) {
            self.decisions.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn set_fans_out_to_every_listener() {
        let a = Arc::new(CountingListener::default());
        let b = Arc::new(CountingListener::default());
        let mut set = ListenerSet::new();
        assert!(set.is_empty());
        set.add(a.clone());
        set.add(b.clone());
        assert_eq!(set.len(), 2);
        set.flush_begin(0);
        set.flush_begin(1);
        set.cost_decision(&CostDecision::HardCap {
            partition: 0,
            unsorted: 3,
            cap: 2,
            triggered: true,
        });
        for l in [&a, &b] {
            assert_eq!(l.flushes.load(Ordering::Relaxed), 2);
            assert_eq!(l.decisions.load(Ordering::Relaxed), 1);
        }
        // Cloning shares the same listener instances.
        let cloned = set.clone();
        cloned.flush_begin(2);
        assert_eq!(a.flushes.load(Ordering::Relaxed), 3);
    }
}
