//! MatrixKV-style level-0 (the paper's main PM baseline).
//!
//! MatrixKV (Yao et al., ATC 2020) organises its PM level-0 as a *matrix
//! container*: each flushed memtable becomes a **row** (an array-based
//! table), and compaction to level-1 proceeds in fine-grained **column**
//! slices (key subranges cut across all rows). Reads use a *cross-hint
//! search*: the position found in one row narrows the search window in
//! the next, cheaper than a fresh binary search per row but still
//! touching every row.
//!
//! The properties the paper's comparisons rely on, and which this model
//! reproduces:
//!
//! - flushes pay an extra construction overhead for the matrix/cross-hint
//!   structure (`matrix_flush_overhead` × the flush cost), which is why
//!   MatrixKV-80GB loses the Load workload in Fig 12;
//! - reads touch every row even with hints (no internal compaction), so
//!   read amplification grows with the row count;
//! - eviction is *whole-container* in column slices: no hot-data
//!   retention, so the PM hit ratio decays (Fig 8(b), Fig 11).

use encoding::key::SequenceNumber;
use pm_device::{PmPool, PmRegion, RegionId};
use pmtable::{ArrayTable, ArrayTableBuilder, L0Table, Lookup, OwnedEntry};
use sim::Timeline;

use crate::options::Options;

/// One flushed row of the matrix container.
struct Row {
    table: ArrayTable<PmRegion>,
    region: RegionId,
    first: Vec<u8>,
    last: Vec<u8>,
    bytes: usize,
    entries: usize,
}

/// The matrix container.
pub struct MatrixL0 {
    rows: Vec<Row>,
    /// Column slices per container compaction (`matrix_columns`).
    columns: usize,
}

impl MatrixL0 {
    pub fn new(columns: usize) -> Self {
        MatrixL0 {
            rows: Vec::new(),
            columns: columns.max(1),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    pub fn bytes(&self) -> usize {
        self.rows.iter().map(|r| r.bytes).sum()
    }

    pub fn entries(&self) -> usize {
        self.rows.iter().map(|r| r.entries).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn column_count(&self) -> usize {
        self.columns
    }

    /// Flush a frozen memtable into a new row. Charges the array-table
    /// encode cost, the PM publish, **and** the matrix construction
    /// overhead (cross-hint metadata).
    pub fn flush_row(
        &mut self,
        entries: &[OwnedEntry],
        opts: &Options,
        pool: &PmPool,
        tl: &mut Timeline,
    ) -> Result<(), crate::engine::DbError> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut builder = ArrayTableBuilder::new();
        for e in entries {
            builder.add(e.clone());
        }
        let before = tl.elapsed();
        let (bytes, _stats) = builder.finish(&opts.cost, tl);
        let len = bytes.len();
        let region = pool.publish(bytes, tl)?;
        let region_id = region.id();
        // Matrix construction overhead: proportional to the flush cost.
        let flush_cost = tl.elapsed() - before;
        tl.charge(flush_cost.mul_f64(opts.matrix_flush_overhead));
        let table =
            ArrayTable::open(region).map_err(|e| crate::engine::DbError::Corrupt(e.to_string()))?;
        let first = table.first_user_key().expect("nonempty row").to_vec();
        let last = table.last_user_key().expect("nonempty row").to_vec();
        self.rows.push(Row {
            table,
            region: region_id,
            first,
            last,
            bytes: len,
            entries: entries.len(),
        });
        Ok(())
    }

    /// Region ids of the rows, oldest first — what the manifest logs.
    pub fn region_ids(&self) -> Vec<RegionId> {
        self.rows.iter().map(|r| r.region).collect()
    }

    /// Rebuild one row from a recovered region (manifest replay). Rows
    /// must be pushed oldest-first, matching [`MatrixL0::region_ids`].
    pub fn push_recovered_row(&mut self, region: PmRegion) -> Result<(), crate::engine::DbError> {
        let region_id = region.id();
        let len = region.len();
        let table =
            ArrayTable::open(region).map_err(|e| crate::engine::DbError::Corrupt(e.to_string()))?;
        let first = table
            .first_user_key()
            .ok_or_else(|| {
                crate::engine::DbError::Corrupt(format!("matrix region {region_id} is empty"))
            })?
            .to_vec();
        let last = table.last_user_key().expect("nonempty row").to_vec();
        let entries = table.entry_count();
        self.rows.push(Row {
            table,
            region: region_id,
            first,
            last,
            bytes: len,
            entries,
        });
        Ok(())
    }

    /// Cross-hint point lookup: full search cost on the first (newest)
    /// row, discounted hinted probes on the rest.
    pub fn get(
        &self,
        user_key: &[u8],
        snapshot: SequenceNumber,
        tl: &mut Timeline,
    ) -> Option<Lookup> {
        let mut first_row_searched = false;
        for row in self.rows.iter().rev() {
            if row.first.as_slice() > user_key || row.last.as_slice() < user_key {
                continue;
            }
            if !first_row_searched {
                first_row_searched = true;
                if let Some(hit) = row.table.get(user_key, snapshot, tl) {
                    return Some(hit);
                }
            } else {
                // Cross-hint: the previous row's position bounds this
                // row's search window; model as a constant small probe
                // plus the actual (unmetered) verification.
                let mut free = Timeline::new();
                let hit = row.table.get(user_key, snapshot, &mut free);
                // Two hinted PM touches instead of a full binary search.
                tl.charge(opts_probe_cost() * 2);
                if let Some(hit) = hit {
                    return Some(hit);
                }
            }
        }
        None
    }

    /// Range-scan sources (each row is internally sorted).
    pub fn scan_sources(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        tl: &mut Timeline,
    ) -> Vec<Vec<OwnedEntry>> {
        self.rows
            .iter()
            .rev()
            .filter(|row| {
                row.last.as_slice() >= start && end.is_none_or(|e| row.first.as_slice() < e)
            })
            .map(|row| row.table.scan_range(start, end, limit, tl))
            .collect()
    }

    /// Drain the container for column compaction: the caller merges these
    /// sources column-by-column into level-1. Rows are consumed.
    pub fn drain_sources(&mut self, tl: &mut Timeline) -> Vec<Vec<OwnedEntry>> {
        self.rows.iter().map(|row| row.table.scan_all(tl)).collect()
    }

    /// Region ids to free after [`MatrixL0::drain_sources`].
    pub fn take_regions(&mut self) -> Vec<RegionId> {
        self.rows.drain(..).map(|r| r.region).collect()
    }

    /// Split sorted merged entries into `columns` key-range slices — the
    /// column compaction granularity (each slice becomes one fine-grained
    /// compaction unit).
    pub fn column_slices<'a>(&self, merged: &'a [OwnedEntry]) -> Vec<&'a [OwnedEntry]> {
        if merged.is_empty() {
            return Vec::new();
        }
        let per = merged.len().div_ceil(self.columns);
        merged.chunks(per.max(1)).collect()
    }
}

/// Cost of one hinted probe (a single PM cacheline touch).
fn opts_probe_cost() -> sim::SimDuration {
    sim::CostModel::default().pm.random_read(64)
}

impl std::fmt::Debug for MatrixL0 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixL0")
            .field("rows", &self.rows.len())
            .field("bytes", &self.bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::CostModel;

    fn entries(base: u64, n: usize) -> Vec<OwnedEntry> {
        let mut v: Vec<OwnedEntry> = (0..n)
            .map(|i| {
                OwnedEntry::value(
                    format!("k{:05}", i * 3).into_bytes(),
                    base + i as u64,
                    format!("v{base}-{i}").into_bytes(),
                )
            })
            .collect();
        v.sort_by(|a, b| a.internal_cmp(b));
        v
    }

    fn setup() -> (std::sync::Arc<PmPool>, Options) {
        (
            PmPool::new(8 << 20, CostModel::default()),
            Options::matrixkv(8 << 20),
        )
    }

    #[test]
    fn flush_and_get_across_rows() {
        let (pool, opts) = setup();
        let mut m = MatrixL0::new(4);
        let mut tl = Timeline::new();
        m.flush_row(&entries(1, 50), &opts, &pool, &mut tl).unwrap();
        m.flush_row(&entries(1000, 50), &opts, &pool, &mut tl)
            .unwrap();
        assert_eq!(m.rows(), 2);
        // Newest row wins.
        let hit = m.get(b"k00006", u64::MAX, &mut tl).unwrap();
        assert_eq!(hit.value, b"v1000-2");
        // Snapshot below the newer flush sees the older row.
        let hit = m.get(b"k00006", 500, &mut tl).unwrap();
        assert_eq!(hit.value, b"v1-2");
        assert!(m.get(b"k00001", u64::MAX, &mut tl).is_none());
    }

    #[test]
    fn flush_overhead_is_charged() {
        let (pool, base_opts) = setup();
        let rows = entries(1, 200);
        let mut with = Timeline::new();
        let mut without = Timeline::new();
        let mut m1 = MatrixL0::new(4);
        m1.flush_row(&rows, &base_opts, &pool, &mut with).unwrap();
        let mut m2 = MatrixL0::new(4);
        let cheap = Options {
            matrix_flush_overhead: 0.0,
            ..base_opts.clone()
        };
        m2.flush_row(&rows, &cheap, &pool, &mut without).unwrap();
        assert!(with.elapsed() > without.elapsed());
    }

    #[test]
    fn drain_and_take_regions_free_space() {
        let (pool, opts) = setup();
        let mut m = MatrixL0::new(4);
        let mut tl = Timeline::new();
        m.flush_row(&entries(1, 20), &opts, &pool, &mut tl).unwrap();
        assert!(m.bytes() > 0);
        let sources = m.drain_sources(&mut tl);
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].len(), 20);
        for region in m.take_regions() {
            pool.free(region);
        }
        assert!(m.is_empty());
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn column_slices_cover_everything() {
        let m = MatrixL0::new(4);
        let merged = entries(1, 103);
        let slices = m.column_slices(&merged);
        assert_eq!(slices.len(), 4);
        let total: usize = slices.iter().map(|s| s.len()).sum();
        assert_eq!(total, 103);
        // Slices are contiguous key ranges.
        for pair in slices.windows(2) {
            assert!(pair[0].last().unwrap().user_key < pair[1].first().unwrap().user_key);
        }
        assert!(m.column_slices(&[]).is_empty());
    }

    #[test]
    fn scan_sources_filters_range() {
        let (pool, opts) = setup();
        let mut m = MatrixL0::new(4);
        let mut tl = Timeline::new();
        m.flush_row(&entries(1, 30), &opts, &pool, &mut tl).unwrap();
        let sources = m.scan_sources(b"k00010", Some(b"k00030"), usize::MAX, &mut tl);
        assert_eq!(sources.len(), 1);
        // Keys k00012..k00027 step 3.
        assert!(sources[0]
            .iter()
            .all(|e| e.user_key.as_slice() >= b"k00010".as_slice()
                && e.user_key.as_slice() < b"k00030".as_slice()));
        assert!(!sources[0].is_empty());
    }
}
