//! The SSD levels (level-1 and below) of one partition.
//!
//! Each level is a sorted run of non-overlapping SSTables. Level `n` has
//! a target size of `l1_target * multiplier^(n-1)`; when it overflows,
//! the whole level is merged into level `n+1` (a whole-level leveled
//! policy — adequate at the reproduction's scale and identical in
//! write-amplification shape to per-table picking).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use encoding::key::{self, SequenceNumber};
use pmtable::{Lookup, OwnedEntry};
use sim::Timeline;
use ssd_device::SsdDevice;
use sstable::{BlockCache, SsTable, SsTableBuilder, SsTableOptions};

use crate::handle::SsTableHandle;

/// Per-get SSD probe accounting, threaded into the request tracer's
/// `ssd_read` stage.
#[derive(Default, Clone, Copy, Debug)]
pub struct SsdReadStats {
    /// Levels whose candidate table overlapped the key and was probed.
    pub tables_probed: u64,
    /// Levels walked (including those skipped by the key-range check).
    pub levels_searched: u64,
}

/// SSD level stack for one partition.
#[derive(Default)]
pub struct SsdLevels {
    /// `levels[0]` is level-1. Each inner vec is sorted by key range.
    pub levels: Vec<Vec<SsTableHandle>>,
}

impl SsdLevels {
    pub fn new() -> Self {
        SsdLevels::default()
    }

    /// Bytes held at level `n` (1-based).
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels
            .get(level - 1)
            .map(|tables| tables.iter().map(|t| t.bytes).sum())
            .unwrap_or(0)
    }

    /// Total SSD bytes of this partition.
    pub fn total_bytes(&self) -> u64 {
        self.levels
            .iter()
            .flat_map(|l| l.iter())
            .map(|t| t.bytes)
            .sum()
    }

    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(|l| l.is_empty())
    }

    /// Point lookup: walk levels top-down; within a level at most one
    /// table overlaps. Returns the hit plus the 1-based level that
    /// served it (for the per-level read-source metrics).
    ///
    /// A table-read failure propagates instead of being skipped: a
    /// deeper level may hold an *older* version of the key, so falling
    /// through past an unreadable table could silently serve stale data.
    pub fn get(
        &self,
        user_key: &[u8],
        snapshot: SequenceNumber,
        tl: &mut Timeline,
    ) -> Result<Option<(Lookup, usize)>, sstable::table::TableError> {
        let mut stats = SsdReadStats::default();
        self.get_with_stats(user_key, snapshot, tl, &mut stats)
    }

    /// [`SsdLevels::get`] with per-get probe accounting for tracing.
    pub fn get_with_stats(
        &self,
        user_key: &[u8],
        snapshot: SequenceNumber,
        tl: &mut Timeline,
        stats: &mut SsdReadStats,
    ) -> Result<Option<(Lookup, usize)>, sstable::table::TableError> {
        for (depth, level) in self.levels.iter().enumerate() {
            stats.levels_searched += 1;
            let idx = level.partition_point(|h| h.last.as_slice() < user_key);
            let Some(handle) = level.get(idx) else {
                continue;
            };
            if !handle.overlaps_key(user_key) {
                continue;
            }
            stats.tables_probed += 1;
            match handle.table.get(user_key, snapshot, tl)? {
                Some((seq, kind, value)) => {
                    return Ok(Some((Lookup { seq, kind, value }, depth + 1)))
                }
                None => continue,
            }
        }
        Ok(None)
    }

    /// Range scan sources, one per level (each level is itself sorted).
    pub fn scan_sources(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        tl: &mut Timeline,
    ) -> Vec<Vec<OwnedEntry>> {
        let mut sources = Vec::new();
        for level in &self.levels {
            let mut run = Vec::new();
            for handle in level {
                if !handle.overlaps_range(start, end) {
                    continue;
                }
                if run.len() >= limit {
                    break;
                }
                // Bounded scan: touches only the intersecting blocks.
                let hits = handle
                    .table
                    .scan_range(start, end, limit - run.len(), tl)
                    .unwrap_or_default();
                for (ikey, value) in hits {
                    run.push(OwnedEntry {
                        user_key: key::user_key(&ikey).to_vec(),
                        seq: key::sequence(&ikey),
                        kind: key::kind(&ikey).expect("valid kind"),
                        value,
                    });
                }
            }
            if !run.is_empty() {
                sources.push(run);
            }
        }
        sources
    }

    /// Install `tables` as the new level `n`, returning the old tables
    /// for deletion by the caller.
    pub fn replace_level(
        &mut self,
        level: usize,
        tables: Vec<SsTableHandle>,
    ) -> Vec<SsTableHandle> {
        while self.levels.len() < level {
            self.levels.push(Vec::new());
        }
        debug_assert!(tables.windows(2).all(|w| w[0].last < w[1].first));
        std::mem::replace(&mut self.levels[level - 1], tables)
    }

    /// All tables of level `n` overlapping `[first, last]`.
    pub fn overlapping(&self, level: usize, first: &[u8], last: &[u8]) -> Vec<SsTableHandle> {
        self.levels
            .get(level - 1)
            .map(|tables| {
                tables
                    .iter()
                    .filter(|t| t.overlaps_handle_range(first, last))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl std::fmt::Debug for SsdLevels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sizes: Vec<u64> = (1..=self.levels.len())
            .map(|l| self.level_bytes(l))
            .collect();
        f.debug_struct("SsdLevels")
            .field("level_bytes", &sizes)
            .finish()
    }
}

/// Build SSTables (split at `max_bytes`) from sorted entries. Returns the
/// new handles; files are named `{prefix}-{counter}.sst`. The counter is
/// atomic so concurrent compactions of different partitions never mint
/// the same file name.
#[allow(clippy::too_many_arguments)]
pub fn build_ss_tables(
    entries: &[OwnedEntry],
    device: &Arc<SsdDevice>,
    cache: &Arc<BlockCache>,
    prefix: &str,
    counter: &AtomicU64,
    max_bytes: usize,
    opts: SsTableOptions,
    tl: &mut Timeline,
) -> Result<Vec<SsTableHandle>, sstable::table::TableError> {
    let mut out = Vec::new();
    let mut iter = entries.iter().peekable();
    while iter.peek().is_some() {
        let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
        let name = format!("{prefix}-{n:08}.sst");
        let mut builder = SsTableBuilder::new(device, &name, opts)?;
        let mut first: Option<Vec<u8>> = None;
        let mut last: Vec<u8> = Vec::new();
        let mut max_seq = 0u64;
        for entry in iter.by_ref() {
            if first.is_none() {
                first = Some(entry.user_key.clone());
            }
            last = entry.user_key.clone();
            max_seq = max_seq.max(entry.seq);
            builder.add(&entry.user_key, entry.seq, entry.kind, &entry.value, tl);
            if builder.estimated_size() >= max_bytes as u64 {
                break;
            }
        }
        let (bytes, _, _) = builder.finish(tl)?;
        let table = SsTable::open(device, &name, Arc::clone(cache), tl)?;
        out.push(SsTableHandle {
            table: Arc::new(table),
            name,
            first: first.expect("loop adds at least one entry"),
            last,
            bytes,
            max_seq,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoding::key::KeyKind;
    use sim::CostModel;

    fn e(k: &str, seq: u64, v: &str) -> OwnedEntry {
        OwnedEntry::value(k.as_bytes().to_vec(), seq, v.as_bytes().to_vec())
    }

    fn setup() -> (Arc<SsdDevice>, Arc<BlockCache>) {
        (
            SsdDevice::new(CostModel::default()),
            Arc::new(BlockCache::new(1 << 20)),
        )
    }

    #[test]
    fn build_and_lookup_across_levels() {
        let (device, cache) = setup();
        let mut tl = Timeline::new();
        let counter = AtomicU64::new(0);
        let l1: Vec<OwnedEntry> = (0..100)
            .map(|i| e(&format!("k{:04}", i), 200 + i, "l1"))
            .collect();
        let l2: Vec<OwnedEntry> = (0..200)
            .map(|i| e(&format!("k{:04}", i), 1 + i, "l2"))
            .collect();
        let t1 = build_ss_tables(
            &l1,
            &device,
            &cache,
            "p0-L1",
            &counter,
            usize::MAX,
            SsTableOptions::default(),
            &mut tl,
        )
        .unwrap();
        let t2 = build_ss_tables(
            &l2,
            &device,
            &cache,
            "p0-L2",
            &counter,
            usize::MAX,
            SsTableOptions::default(),
            &mut tl,
        )
        .unwrap();
        let mut levels = SsdLevels::new();
        levels.replace_level(1, t1);
        levels.replace_level(2, t2);
        // Key in both levels: L1 wins (and reports level 1).
        let (hit, level) = levels.get(b"k0050", u64::MAX, &mut tl).unwrap().unwrap();
        assert_eq!(hit.value, b"l1");
        assert_eq!(level, 1);
        // Key only in L2.
        let (hit, level) = levels.get(b"k0150", u64::MAX, &mut tl).unwrap().unwrap();
        assert_eq!(hit.value, b"l2");
        assert_eq!(level, 2);
        assert!(levels.get(b"k9999", u64::MAX, &mut tl).unwrap().is_none());
        assert_eq!(levels.depth(), 2);
        assert!(levels.total_bytes() > 0);
    }

    #[test]
    fn split_produces_ordered_tables() {
        let (device, cache) = setup();
        let mut tl = Timeline::new();
        let counter = AtomicU64::new(0);
        let entries: Vec<OwnedEntry> = (0..2000)
            .map(|i| e(&format!("k{:06}", i), i + 1, &"v".repeat(64)))
            .collect();
        let tables = build_ss_tables(
            &entries,
            &device,
            &cache,
            "p0-L1",
            &counter,
            32 << 10,
            SsTableOptions::default(),
            &mut tl,
        )
        .unwrap();
        assert!(tables.len() > 1);
        for pair in tables.windows(2) {
            assert!(pair[0].last < pair[1].first);
        }
    }

    #[test]
    fn overlapping_filters_by_range() {
        let (device, cache) = setup();
        let mut tl = Timeline::new();
        let counter = AtomicU64::new(0);
        let a = build_ss_tables(
            &[e("a", 1, "1"), e("c", 2, "2")],
            &device,
            &cache,
            "x",
            &counter,
            usize::MAX,
            SsTableOptions::default(),
            &mut tl,
        )
        .unwrap();
        let b = build_ss_tables(
            &[e("m", 3, "3"), e("o", 4, "4")],
            &device,
            &cache,
            "x",
            &counter,
            usize::MAX,
            SsTableOptions::default(),
            &mut tl,
        )
        .unwrap();
        let mut levels = SsdLevels::new();
        let mut l1 = a;
        l1.extend(b);
        levels.replace_level(1, l1);
        assert_eq!(levels.overlapping(1, b"b", b"d").len(), 1);
        assert_eq!(levels.overlapping(1, b"a", b"z").len(), 2);
        assert_eq!(levels.overlapping(1, b"e", b"f").len(), 0);
        assert_eq!(levels.overlapping(2, b"a", b"z").len(), 0);
    }

    #[test]
    fn scan_sources_orders_within_levels() {
        let (device, cache) = setup();
        let mut tl = Timeline::new();
        let counter = AtomicU64::new(0);
        let entries: Vec<OwnedEntry> = (0..50)
            .map(|i| e(&format!("k{:03}", i), i + 1, "v"))
            .collect();
        let tables = build_ss_tables(
            &entries,
            &device,
            &cache,
            "s",
            &counter,
            usize::MAX,
            SsTableOptions::default(),
            &mut tl,
        )
        .unwrap();
        let mut levels = SsdLevels::new();
        levels.replace_level(1, tables);
        let sources = levels.scan_sources(b"k010", Some(b"k020"), usize::MAX, &mut tl);
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].len(), 10);
        assert_eq!(sources[0][0].user_key, b"k010");
    }

    #[test]
    fn tombstones_flow_through_get() {
        let (device, cache) = setup();
        let mut tl = Timeline::new();
        let counter = AtomicU64::new(0);
        let entries = vec![OwnedEntry::tombstone(b"gone".to_vec(), 9)];
        let tables = build_ss_tables(
            &entries,
            &device,
            &cache,
            "t",
            &counter,
            usize::MAX,
            SsTableOptions::default(),
            &mut tl,
        )
        .unwrap();
        let mut levels = SsdLevels::new();
        levels.replace_level(1, tables);
        let (hit, _) = levels.get(b"gone", u64::MAX, &mut tl).unwrap().unwrap();
        assert_eq!(hit.kind, KeyKind::Delete);
    }
}
