//! Engine-wide statistics.
//!
//! Byte counters are exact (they drive the write-amplification
//! experiments); latency distributions are virtual-clock durations.
//!
//! Since the observability layer landed, `EngineStats` is a *view*
//! over counters owned jointly with the
//! [`MetricsRegistry`](crate::telemetry::MetricsRegistry): each field
//! is an `Arc<Counter>` that [`EngineStats::register`] also files
//! under its field name, so `db.stats()` and `db.metrics_snapshot()`
//! always agree.

use std::sync::Arc;

use sim::{Counter, Histogram};

use crate::telemetry::{MetricKey, MetricsRegistry};

/// Where a read was ultimately served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadSource {
    /// The DRAM memtable (active or immutable).
    MemTable,
    /// The PM level-0.
    Pm,
    /// An SSD level.
    Ssd,
    /// Key not found anywhere.
    Miss,
}

/// Aggregate engine statistics.
#[derive(Default, Debug)]
pub struct EngineStats {
    /// User payload bytes accepted by `put`/`delete` (the denominator of
    /// write amplification).
    pub user_bytes_written: Arc<Counter>,
    /// Foreground operations.
    pub puts: Arc<Counter>,
    pub gets: Arc<Counter>,
    pub deletes: Arc<Counter>,
    pub scans: Arc<Counter>,
    /// Reads by serving tier.
    pub reads_from_memtable: Arc<Counter>,
    pub reads_from_pm: Arc<Counter>,
    pub reads_from_ssd: Arc<Counter>,
    pub read_misses: Arc<Counter>,
    /// Compaction activity.
    pub minor_compactions: Arc<Counter>,
    pub internal_compactions: Arc<Counter>,
    pub major_compactions: Arc<Counter>,
    /// Bytes reclaimed on PM by internal compaction (Table IV).
    pub internal_space_released: Arc<Counter>,
    /// Records dropped as duplicates by internal compaction.
    pub internal_dropped_records: Arc<Counter>,
    /// Group-commit activity: commit groups flushed by a leader, total
    /// write operations that rode in those groups, and `WriteBatch`
    /// submissions (a batch of N ops counts once here, N times in
    /// `grouped_writes`).
    pub group_commits: Arc<Counter>,
    pub grouped_writes: Arc<Counter>,
    pub batch_writes: Arc<Counter>,
}

impl EngineStats {
    /// File every counter into `registry` under its field name, so the
    /// flat stats view and the registry read the same atomics.
    pub fn register(&self, registry: &MetricsRegistry) {
        let fields: [(&'static str, &Arc<Counter>); 17] = [
            ("user_bytes_written", &self.user_bytes_written),
            ("puts", &self.puts),
            ("gets", &self.gets),
            ("deletes", &self.deletes),
            ("scans", &self.scans),
            ("reads_from_memtable", &self.reads_from_memtable),
            ("reads_from_pm", &self.reads_from_pm),
            ("reads_from_ssd", &self.reads_from_ssd),
            ("read_misses", &self.read_misses),
            ("minor_compactions", &self.minor_compactions),
            ("internal_compactions", &self.internal_compactions),
            ("major_compactions", &self.major_compactions),
            ("internal_space_released", &self.internal_space_released),
            ("internal_dropped_records", &self.internal_dropped_records),
            ("group_commits", &self.group_commits),
            ("grouped_writes", &self.grouped_writes),
            ("batch_writes", &self.batch_writes),
        ];
        for (name, counter) in fields {
            registry.register_counter(MetricKey::global(name), Arc::clone(counter));
        }
    }

    /// Record a read outcome.
    pub fn note_read(&self, source: ReadSource) {
        self.gets.incr();
        match source {
            ReadSource::MemTable => self.reads_from_memtable.incr(),
            ReadSource::Pm => self.reads_from_pm.incr(),
            ReadSource::Ssd => self.reads_from_ssd.incr(),
            ReadSource::Miss => self.read_misses.incr(),
        }
    }

    /// Fraction of successful reads served without touching the SSD
    /// (memtable + PM) — the paper's "proportion of reads hitting PM".
    pub fn pm_hit_ratio(&self) -> f64 {
        let fast = self.reads_from_memtable.get() + self.reads_from_pm.get();
        let total = fast + self.reads_from_ssd.get();
        if total == 0 {
            0.0
        } else {
            fast as f64 / total as f64
        }
    }
}

/// Foreground latency distributions (virtual-clock durations).
///
/// The engine records every `get`/`get_at`, `put`/`delete`/
/// `write_batch`, and `scan` into the registry's `read_latency`,
/// `write_latency`, and `scan_latency` histograms;
/// `Db::latency_stats()` returns them as this plain-`Histogram` view
/// for callers that want quantiles without walking a snapshot.
#[derive(Default, Debug, Clone)]
pub struct LatencyStats {
    pub reads: Histogram,
    pub writes: Histogram,
    pub scans: Histogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_accounting_routes_by_source() {
        let s = EngineStats::default();
        s.note_read(ReadSource::MemTable);
        s.note_read(ReadSource::Pm);
        s.note_read(ReadSource::Pm);
        s.note_read(ReadSource::Ssd);
        s.note_read(ReadSource::Miss);
        assert_eq!(s.gets.get(), 5);
        assert_eq!(s.reads_from_memtable.get(), 1);
        assert_eq!(s.reads_from_pm.get(), 2);
        assert_eq!(s.reads_from_ssd.get(), 1);
        assert_eq!(s.read_misses.get(), 1);
        // 3 of 4 located reads avoided the SSD.
        assert!((s.pm_hit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_ratio_is_zero() {
        let s = EngineStats::default();
        assert_eq!(s.pm_hit_ratio(), 0.0);
    }

    #[test]
    fn registered_stats_share_the_registry_counters() {
        let s = EngineStats::default();
        let registry = MetricsRegistry::new();
        s.register(&registry);
        s.puts.add(3);
        registry.counter(MetricKey::global("puts")).incr();
        assert_eq!(s.puts.get(), 4);
        let (counters, _, _) = registry.collect();
        assert_eq!(counters[&MetricKey::global("puts")], 4);
        assert_eq!(counters.len(), 17, "every field is registered");
    }
}
