//! Engine-wide statistics.
//!
//! Byte counters are exact (they drive the write-amplification
//! experiments); latency distributions are virtual-clock durations.

use sim::{Counter, Histogram};

/// Where a read was ultimately served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadSource {
    /// The DRAM memtable (active or immutable).
    MemTable,
    /// The PM level-0.
    Pm,
    /// An SSD level.
    Ssd,
    /// Key not found anywhere.
    Miss,
}

/// Aggregate engine statistics.
#[derive(Default, Debug)]
pub struct EngineStats {
    /// User payload bytes accepted by `put`/`delete` (the denominator of
    /// write amplification).
    pub user_bytes_written: Counter,
    /// Foreground operations.
    pub puts: Counter,
    pub gets: Counter,
    pub deletes: Counter,
    pub scans: Counter,
    /// Reads by serving tier.
    pub reads_from_memtable: Counter,
    pub reads_from_pm: Counter,
    pub reads_from_ssd: Counter,
    pub read_misses: Counter,
    /// Compaction activity.
    pub minor_compactions: Counter,
    pub internal_compactions: Counter,
    pub major_compactions: Counter,
    /// Bytes reclaimed on PM by internal compaction (Table IV).
    pub internal_space_released: Counter,
    /// Records dropped as duplicates by internal compaction.
    pub internal_dropped_records: Counter,
    /// Group-commit activity: commit groups flushed by a leader, total
    /// write operations that rode in those groups, and `WriteBatch`
    /// submissions (a batch of N ops counts once here, N times in
    /// `grouped_writes`).
    pub group_commits: Counter,
    pub grouped_writes: Counter,
    pub batch_writes: Counter,
}

impl EngineStats {
    /// Record a read outcome.
    pub fn note_read(&self, source: ReadSource) {
        self.gets.incr();
        match source {
            ReadSource::MemTable => self.reads_from_memtable.incr(),
            ReadSource::Pm => self.reads_from_pm.incr(),
            ReadSource::Ssd => self.reads_from_ssd.incr(),
            ReadSource::Miss => self.read_misses.incr(),
        }
    }

    /// Fraction of successful reads served without touching the SSD
    /// (memtable + PM) — the paper's "proportion of reads hitting PM".
    pub fn pm_hit_ratio(&self) -> f64 {
        let fast = self.reads_from_memtable.get() + self.reads_from_pm.get();
        let total = fast + self.reads_from_ssd.get();
        if total == 0 {
            0.0
        } else {
            fast as f64 / total as f64
        }
    }
}

/// Mutable per-run latency recorders, kept separate from the atomic
/// counters so benches can own them without locks.
#[derive(Default, Debug)]
pub struct LatencyStats {
    pub reads: Histogram,
    pub writes: Histogram,
    pub scans: Histogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_accounting_routes_by_source() {
        let s = EngineStats::default();
        s.note_read(ReadSource::MemTable);
        s.note_read(ReadSource::Pm);
        s.note_read(ReadSource::Pm);
        s.note_read(ReadSource::Ssd);
        s.note_read(ReadSource::Miss);
        assert_eq!(s.gets.get(), 5);
        assert_eq!(s.reads_from_memtable.get(), 1);
        assert_eq!(s.reads_from_pm.get(), 2);
        assert_eq!(s.reads_from_ssd.get(), 1);
        assert_eq!(s.read_misses.get(), 1);
        // 3 of 4 located reads avoided the SSD.
        assert!((s.pm_hit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_ratio_is_zero() {
        let s = EngineStats::default();
        assert_eq!(s.pm_hit_ratio(), 0.0);
    }
}
