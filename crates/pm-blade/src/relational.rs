//! The record/index-table layer.
//!
//! The paper evaluates PM-Blade under database workloads: *record tables*
//! hold rows keyed by primary key, and *index tables* map indexed-column
//! values back to row ids ("To execute an index query, the system needs
//! to obtain the row id through a scan operation, and then perform a
//! point read to retrieve the target row", §VI-D). `benchmark_kv` adds
//! the same table support on top of db_bench.
//!
//! Key encodings (kept prefix-friendly so PM tables compress well):
//!
//! ```text
//! row:    r{table:04}:{pk}
//! index:  x{table:04}:{col:02}:{value}:{pk}   → value payload = pk
//! ```

use sim::SimDuration;

use crate::commit::WriteBatch;
use crate::engine::{Db, DbError, ScanRequest};

/// Schema of one logical table.
#[derive(Clone, Debug)]
pub struct TableDef {
    pub id: u16,
    /// Number of columns (column 0 is the primary key).
    pub columns: usize,
    /// Indexed column ordinals.
    pub indexes: Vec<usize>,
}

impl TableDef {
    pub fn new(id: u16, columns: usize, indexes: Vec<usize>) -> Self {
        assert!(columns >= 1);
        assert!(indexes.iter().all(|&c| c > 0 && c < columns));
        TableDef {
            id,
            columns,
            indexes,
        }
    }
}

/// A row: column values (column 0 = primary key).
pub type Row = Vec<Vec<u8>>;

fn row_key(table: u16, pk: &[u8]) -> Vec<u8> {
    let mut k = format!("r{:04}:", table).into_bytes();
    k.extend_from_slice(pk);
    k
}

/// Escape a byte string so a 0x00 0x01 terminator can never collide with
/// payload bytes (FoundationDB-tuple style: 0x00 → 0x00 0xFF).
fn escape_into(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        out.push(b);
        if b == 0x00 {
            out.push(0xFF);
        }
    }
    out.push(0x00);
    out.push(0x01);
}

fn index_key(table: u16, col: usize, value: &[u8], pk: &[u8]) -> Vec<u8> {
    let mut k = format!("x{:04}:{:02}:", table, col).into_bytes();
    escape_into(&mut k, value);
    k.extend_from_slice(pk);
    k
}

fn index_prefix(table: u16, col: usize, value: &[u8]) -> Vec<u8> {
    let mut k = format!("x{:04}:{:02}:", table, col).into_bytes();
    escape_into(&mut k, value);
    k
}

fn encode_row(cols: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    encoding::varint::put_u32(&mut out, cols.len() as u32);
    for c in cols {
        encoding::varint::put_slice(&mut out, c);
    }
    out
}

fn decode_row(raw: &[u8]) -> Option<Row> {
    let mut r = encoding::varint::Reader::new(raw);
    let n = r.read_u32()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        cols.push(r.read_slice()?.to_vec());
    }
    Some(cols)
}

/// Relational facade over a [`Db`].
pub struct Relational {
    db: Db,
    tables: Vec<TableDef>,
}

impl Relational {
    pub fn new(db: Db, tables: Vec<TableDef>) -> Self {
        Relational { db, tables }
    }

    pub fn db(&self) -> &Db {
        &self.db
    }

    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    fn table(&self, id: u16) -> &TableDef {
        self.tables
            .iter()
            .find(|t| t.id == id)
            .expect("unknown table id")
    }

    /// Insert a full row, maintaining every index. The row and its index
    /// entries travel in one [`WriteBatch`], so a concurrent reader never
    /// observes a row without its index entries (within one partition).
    /// Returns the virtual latency.
    pub fn insert_row(&self, table: u16, row: &Row) -> Result<SimDuration, DbError> {
        let def = self.table(table).clone();
        assert_eq!(row.len(), def.columns, "row arity mismatch");
        let pk = &row[0];
        let mut batch = WriteBatch::new();
        batch.put(row_key(table, pk), encode_row(row));
        for &col in &def.indexes {
            batch.put(index_key(table, col, &row[col], pk), pk.clone());
        }
        self.db.write_batch(batch)
    }

    /// Update one column of an existing row (index-maintaining).
    pub fn update_column(
        &self,
        table: u16,
        pk: &[u8],
        col: usize,
        value: &[u8],
    ) -> Result<SimDuration, DbError> {
        let def = self.table(table).clone();
        let rk = row_key(table, pk);
        let read = self.db.get(&rk)?;
        let mut total = read.latency;
        let Some(raw) = read.value else {
            return Ok(total); // row vanished; nothing to update
        };
        let mut row = decode_row(&raw).ok_or_else(|| DbError::Corrupt("row payload".into()))?;
        let old = std::mem::replace(&mut row[col], value.to_vec());
        let mut batch = WriteBatch::new();
        if def.indexes.contains(&col) && old != value {
            batch.delete(index_key(table, col, &old, pk));
            batch.put(index_key(table, col, value, pk), pk.to_vec());
        }
        batch.put(rk, encode_row(&row));
        total += self.db.write_batch(batch)?;
        Ok(total)
    }

    /// Primary-key point read.
    pub fn get_row(&self, table: u16, pk: &[u8]) -> Result<(Option<Row>, SimDuration), DbError> {
        let out = self.db.get(&row_key(table, pk))?;
        let row = out.value.as_deref().and_then(decode_row);
        Ok((row, out.latency))
    }

    /// Index query: scan the index prefix for row ids, then point-read
    /// each row — the two-step lookup §VI-D describes.
    pub fn index_query(
        &self,
        table: u16,
        col: usize,
        value: &[u8],
        limit: usize,
    ) -> Result<(Vec<Row>, SimDuration), DbError> {
        let prefix = index_prefix(table, col, value);
        // The prefix ends with the 0x00 0x01 terminator; bumping the
        // final byte gives the exclusive upper bound of this value's
        // index entries.
        let mut end = prefix.clone();
        *end.last_mut().expect("prefix nonempty") = 0x02;
        let (hits, mut total) = self
            .db
            .scan(ScanRequest::new().start(prefix).end(end).limit(limit))?;
        let mut rows = Vec::with_capacity(hits.len());
        for (_ikey, pk) in hits {
            let (row, latency) = self.get_row(table, &pk)?;
            total += latency;
            if let Some(row) = row {
                rows.push(row);
            }
        }
        Ok((rows, total))
    }

    /// Range scan of rows by primary key.
    pub fn scan_rows(
        &self,
        table: u16,
        start_pk: &[u8],
        limit: usize,
    ) -> Result<(Vec<Row>, SimDuration), DbError> {
        let start = row_key(table, start_pk);
        let end = format!("r{:04};", table).into_bytes(); // ':'+1
        let (hits, latency) = self
            .db
            .scan(ScanRequest::new().start(start).end(end).limit(limit))?;
        let rows = hits.iter().filter_map(|(_, v)| decode_row(v)).collect();
        Ok((rows, latency))
    }

    /// Delete a row and its index entries.
    pub fn delete_row(&self, table: u16, pk: &[u8]) -> Result<SimDuration, DbError> {
        let def = self.table(table).clone();
        let rk = row_key(table, pk);
        let read = self.db.get(&rk)?;
        let mut total = read.latency;
        let mut batch = WriteBatch::new();
        if let Some(raw) = read.value {
            if let Some(row) = decode_row(&raw) {
                for &col in &def.indexes {
                    batch.delete(index_key(table, col, &row[col], pk));
                }
            }
        }
        batch.delete(rk);
        total += self.db.write_batch(batch)?;
        Ok(total)
    }
}

impl std::fmt::Debug for Relational {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Relational")
            .field("tables", &self.tables.len())
            .field("db", &self.db)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{Mode, Options};

    fn setup() -> Relational {
        let opts = Options {
            pm_capacity: 4 << 20,
            memtable_bytes: 16 << 10,
            mode: Mode::PmBlade,
            ..Options::default()
        };
        let db = Db::open(opts).unwrap();
        Relational::new(
            db,
            vec![
                TableDef::new(1, 4, vec![1, 2]),
                TableDef::new(2, 2, vec![1]),
            ],
        )
    }

    fn row(pk: &str, c1: &str, c2: &str, c3: &str) -> Row {
        vec![
            pk.as_bytes().to_vec(),
            c1.as_bytes().to_vec(),
            c2.as_bytes().to_vec(),
            c3.as_bytes().to_vec(),
        ]
    }

    #[test]
    fn insert_and_point_read() {
        let rel = setup();
        rel.insert_row(1, &row("order1", "pending", "user9", "50.0"))
            .unwrap();
        let (got, latency) = rel.get_row(1, b"order1").unwrap();
        let got = got.unwrap();
        assert_eq!(got[1], b"pending");
        assert!(latency > SimDuration::ZERO);
        assert!(rel.get_row(1, b"absent").unwrap().0.is_none());
    }

    #[test]
    fn index_query_finds_rows_via_two_step_lookup() {
        let rel = setup();
        for i in 0..20 {
            let status = if i % 2 == 0 { "paid" } else { "pending" };
            rel.insert_row(1, &row(&format!("order{:03}", i), status, "user1", "9.9"))
                .unwrap();
        }
        let (rows, _) = rel.index_query(1, 1, b"paid", 100).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r[1] == b"paid"));
        let (rows, _) = rel.index_query(1, 1, b"shipped", 100).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn update_column_moves_index_entries() {
        let rel = setup();
        rel.insert_row(1, &row("o1", "pending", "u1", "1")).unwrap();
        rel.update_column(1, b"o1", 1, b"paid").unwrap();
        let (paid, _) = rel.index_query(1, 1, b"paid", 10).unwrap();
        assert_eq!(paid.len(), 1);
        let (pending, _) = rel.index_query(1, 1, b"pending", 10).unwrap();
        assert!(pending.is_empty(), "old index entry must be gone");
        let (got, _) = rel.get_row(1, b"o1").unwrap();
        assert_eq!(got.unwrap()[1], b"paid");
    }

    #[test]
    fn update_unindexed_column_leaves_indexes_alone() {
        let rel = setup();
        rel.insert_row(1, &row("o2", "paid", "u2", "5")).unwrap();
        rel.update_column(1, b"o2", 3, b"7.5").unwrap();
        let (rows, _) = rel.index_query(1, 1, b"paid", 10).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][3], b"7.5");
    }

    #[test]
    fn delete_row_clears_indexes() {
        let rel = setup();
        rel.insert_row(1, &row("o3", "paid", "u3", "2")).unwrap();
        rel.delete_row(1, b"o3").unwrap();
        assert!(rel.get_row(1, b"o3").unwrap().0.is_none());
        let (rows, _) = rel.index_query(1, 1, b"paid", 10).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn scan_rows_orders_by_pk() {
        let rel = setup();
        for i in [3, 1, 2] {
            rel.insert_row(
                2,
                vec![format!("pk{i}").into_bytes(), format!("v{i}").into_bytes()].as_ref(),
            )
            .unwrap();
        }
        let (rows, _) = rel.scan_rows(2, b"", 10).unwrap();
        let pks: Vec<&[u8]> = rows.iter().map(|r| r[0].as_slice()).collect();
        assert_eq!(pks, vec![&b"pk1"[..], b"pk2", b"pk3"]);
        let (rows, _) = rel.scan_rows(2, b"pk2", 10).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn tables_are_isolated() {
        let rel = setup();
        rel.insert_row(2, &vec![b"dup".to_vec(), b"t2".to_vec()])
            .unwrap();
        rel.insert_row(1, &row("dup", "s", "u", "1")).unwrap();
        let (r1, _) = rel.get_row(1, b"dup").unwrap();
        let (r2, _) = rel.get_row(2, b"dup").unwrap();
        assert_eq!(r1.unwrap().len(), 4);
        assert_eq!(r2.unwrap().len(), 2);
    }

    #[test]
    fn index_values_containing_separator_bytes_stay_isolated() {
        let rel = setup();
        // value "a" pk "b:c" vs value "a\0b" — must not collide.
        rel.insert_row(2, &vec![b"b:c".to_vec(), b"a".to_vec()])
            .unwrap();
        rel.insert_row(2, &vec![b"x".to_vec(), b"a\x00b".to_vec()])
            .unwrap();
        let (rows, _) = rel.index_query(2, 1, b"a", 10).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], b"b:c");
    }

    #[test]
    fn survives_flushes_and_compactions() {
        let rel = setup();
        for i in 0..300 {
            rel.insert_row(
                1,
                &row(
                    &format!("o{:05}", i),
                    &format!("st{}", i % 5),
                    &format!("u{:03}", i % 50),
                    &"p".repeat(100),
                ),
            )
            .unwrap();
        }
        rel.db()
            .compact(crate::engine::CompactionRequest::FlushAll)
            .unwrap();
        let (rows, _) = rel.index_query(1, 1, b"st3", 500).unwrap();
        assert_eq!(rows.len(), 60);
        let (row, _) = rel.get_row(1, b"o00123").unwrap();
        assert!(row.is_some());
    }
}
