//! The wire protocol shared by `pm-blade-server` and `pm-blade-client`.
//!
//! Every message travels in one *frame*:
//!
//! ```text
//! u32le payload_len | u32le masked_crc32c(payload) | payload
//! ```
//!
//! The CRC is masked with the LevelDB rotation ([`encoding::crc::mask`])
//! so frames whose payload embeds another CRC still checksum well. The
//! payload is a tag byte followed by varint/length-prefixed fields
//! ([`encoding::varint`]), the same primitives the table formats use.
//!
//! [`Request`] and [`Response`] are the canonical typed surface of the
//! engine: each request maps onto exactly one `Db` call, and
//! [`Request::Scan`] carries the engine's [`ScanRequest`] verbatim.
//! Errors cross the wire as `(code, message)` pairs using the stable
//! numeric codes of [`DbError::code`] — no stringly matching.

use std::io::{self, Read, Write};

use encoding::{crc, varint};

use crate::commit::BatchOp;
use crate::engine::{CompactionRequest, DbError, ScanRequest};
use crate::telemetry::TraceContext;

/// Hard cap on one frame's payload. Large enough for a full scan page
/// of sizeable rows, small enough that a corrupt length prefix cannot
/// balloon into a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Anything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (including read timeouts, which
    /// surface as `WouldBlock`/`TimedOut` and are retryable when they
    /// strike *between* frames).
    Io(io::Error),
    /// The peer sent bytes that do not parse: bad CRC, truncated
    /// payload, unknown tag, trailing garbage.
    Corrupt(String),
    /// The peer announced a frame larger than [`MAX_FRAME_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io: {e}"),
            WireError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            WireError::TooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds cap of {MAX_FRAME_BYTES}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// True when this is an idle read timeout: no frame bytes were
    /// consumed, so the caller may simply call `read_frame` again.
    pub fn is_idle_timeout(&self) -> bool {
        matches!(self, WireError::Io(e)
            if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut))
    }
}

/// One client request. Each variant maps onto one `Db` entry point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness / round-trip probe.
    Ping,
    /// `Db::put`.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// `Db::delete`.
    Delete { key: Vec<u8> },
    /// `Db::write_batch` — the batch-puts path.
    WriteBatch { ops: Vec<BatchOp> },
    /// `Db::get`.
    Get { key: Vec<u8> },
    /// `Db::scan`, carrying the engine's builder verbatim.
    Scan(ScanRequest),
    /// `Db::compact`.
    Compact(CompactionRequest),
    /// A request wrapped in a trace context: the server runs `inner`
    /// through the engine's `*_traced` entry points so the client's
    /// trace id spans client → server → engine. Nesting is rejected on
    /// decode (one envelope per request).
    Traced {
        ctx: TraceContext,
        inner: Box<Request>,
    },
}

/// One server reply. Virtual latencies ride along so remote callers see
/// the same simulated-cost signal as in-process ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    Pong,
    /// A put/delete/batch was committed.
    Written {
        latency_nanos: u64,
    },
    /// A point read completed (`None` = key absent).
    Value {
        value: Option<Vec<u8>>,
        latency_nanos: u64,
    },
    /// A scan page.
    Rows {
        rows: Vec<(Vec<u8>, Vec<u8>)>,
        latency_nanos: u64,
    },
    /// A compaction request completed.
    Compacted,
    /// The engine refused: [`DbError::code`] plus its Display message.
    Error {
        code: u16,
        message: String,
    },
}

impl Response {
    /// Build the wire form of an engine error.
    pub fn from_db_error(e: &DbError) -> Response {
        Response::Error {
            code: e.code(),
            message: e.to_string(),
        }
    }
}

// --- framing ---------------------------------------------------------

/// Write one frame around `payload`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    let mut header = [0u8; 8];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..8].copy_from_slice(&crc::mask(crc::crc32c(payload)).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame's payload. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary. An idle read timeout (no
/// bytes consumed yet) surfaces as a retryable [`WireError::Io`] — see
/// [`WireError::is_idle_timeout`]; a peer that stalls *mid-frame* is
/// reported as corrupt after one grace retry.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 8];
    if !read_full(r, &mut header, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let masked = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, false)?;
    let expect = crc::unmask(masked);
    let actual = crc::crc32c(&payload);
    if actual != expect {
        return Err(WireError::Corrupt(format!(
            "payload crc {actual:#010x} != header {expect:#010x}"
        )));
    }
    Ok(Some(payload))
}

/// Fill `buf` completely. Returns `Ok(false)` on clean EOF before any
/// byte when `start_of_frame`; EOF or a persistent stall anywhere else
/// is corruption. An idle timeout at a frame boundary propagates as
/// `Io` with nothing consumed, so the caller can retry.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], start_of_frame: bool) -> Result<bool, WireError> {
    let mut filled = 0;
    let mut stalled = false;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if start_of_frame && filled == 0 {
                    return Ok(false);
                }
                return Err(WireError::Corrupt(format!(
                    "connection closed mid-frame ({filled}/{} bytes)",
                    buf.len()
                )));
            }
            Ok(n) => {
                filled += n;
                stalled = false;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if start_of_frame && filled == 0 {
                    return Err(WireError::Io(e));
                }
                if stalled {
                    return Err(WireError::Corrupt(format!(
                        "peer stalled mid-frame ({filled}/{} bytes)",
                        buf.len()
                    )));
                }
                stalled = true;
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

// --- payload encoding ------------------------------------------------

mod tag {
    // Request tags.
    pub const PING: u8 = 0;
    pub const PUT: u8 = 1;
    pub const DELETE: u8 = 2;
    pub const WRITE_BATCH: u8 = 3;
    pub const GET: u8 = 4;
    pub const SCAN: u8 = 5;
    pub const COMPACT: u8 = 6;
    pub const TRACED: u8 = 7;

    // Traced-envelope flag bits.
    pub const TRACE_SAMPLED: u8 = 0b01;
    pub const TRACE_HAS_DEADLINE: u8 = 0b10;

    // Response tags.
    pub const PONG: u8 = 0;
    pub const WRITTEN: u8 = 1;
    pub const VALUE: u8 = 2;
    pub const ROWS: u8 = 3;
    pub const COMPACTED: u8 = 4;
    pub const ERROR: u8 = 5;

    // BatchOp tags.
    pub const OP_PUT: u8 = 0;
    pub const OP_DELETE: u8 = 1;

    // CompactionRequest tags.
    pub const C_FLUSH: u8 = 0;
    pub const C_FLUSH_ALL: u8 = 1;
    pub const C_INTERNAL: u8 = 2;
    pub const C_MAJOR: u8 = 3;
    pub const C_RETENTION: u8 = 4;
}

fn put_opt_slice(out: &mut Vec<u8>, s: &Option<Vec<u8>>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            varint::put_slice(out, s);
        }
    }
}

fn corrupt(what: &str) -> WireError {
    WireError::Corrupt(format!("truncated or invalid {what}"))
}

struct Dec<'a> {
    r: varint::Reader<'a>,
    what: &'static str,
}

impl<'a> Dec<'a> {
    fn new(payload: &'a [u8], what: &'static str) -> Self {
        Dec {
            r: varint::Reader::new(payload),
            what,
        }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.r.read_bytes(1).ok_or_else(|| corrupt(self.what))?[0])
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        self.r.read_u64().ok_or_else(|| corrupt(self.what))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        Ok(self
            .r
            .read_slice()
            .ok_or_else(|| corrupt(self.what))?
            .to_vec())
    }

    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            _ => Err(corrupt(self.what)),
        }
    }

    /// Consume and return every remaining byte (the traced envelope's
    /// inner payload runs to the end of the frame — no length prefix).
    fn rest(&mut self) -> &'a [u8] {
        let n = self.r.remaining();
        self.r.read_bytes(n).unwrap_or(&[])
    }

    fn finish(self) -> Result<(), WireError> {
        if self.r.is_empty() {
            Ok(())
        } else {
            Err(WireError::Corrupt(format!(
                "{}: {} trailing bytes",
                self.what,
                self.r.remaining()
            )))
        }
    }
}

impl Request {
    /// Encode this request's payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(tag::PING),
            Request::Put { key, value } => {
                out.push(tag::PUT);
                varint::put_slice(&mut out, key);
                varint::put_slice(&mut out, value);
            }
            Request::Delete { key } => {
                out.push(tag::DELETE);
                varint::put_slice(&mut out, key);
            }
            Request::WriteBatch { ops } => {
                out.push(tag::WRITE_BATCH);
                varint::put_u64(&mut out, ops.len() as u64);
                for op in ops {
                    match op {
                        BatchOp::Put { key, value } => {
                            out.push(tag::OP_PUT);
                            varint::put_slice(&mut out, key);
                            varint::put_slice(&mut out, value);
                        }
                        BatchOp::Delete { key } => {
                            out.push(tag::OP_DELETE);
                            varint::put_slice(&mut out, key);
                        }
                    }
                }
            }
            Request::Get { key } => {
                out.push(tag::GET);
                varint::put_slice(&mut out, key);
            }
            Request::Scan(req) => {
                out.push(tag::SCAN);
                varint::put_slice(&mut out, &req.start);
                put_opt_slice(&mut out, &req.end);
                varint::put_u64(&mut out, req.limit as u64);
                out.push(req.reverse as u8);
            }
            Request::Compact(req) => {
                out.push(tag::COMPACT);
                match req {
                    CompactionRequest::Flush { partition } => {
                        out.push(tag::C_FLUSH);
                        varint::put_u64(&mut out, *partition as u64);
                    }
                    CompactionRequest::FlushAll => out.push(tag::C_FLUSH_ALL),
                    CompactionRequest::Internal { partition } => {
                        out.push(tag::C_INTERNAL);
                        varint::put_u64(&mut out, *partition as u64);
                    }
                    CompactionRequest::Major { partition } => {
                        out.push(tag::C_MAJOR);
                        varint::put_u64(&mut out, *partition as u64);
                    }
                    CompactionRequest::MajorWithRetention => out.push(tag::C_RETENTION),
                }
            }
            Request::Traced { ctx, inner } => {
                out.push(tag::TRACED);
                varint::put_u64(&mut out, ctx.trace_id);
                let mut flags = 0u8;
                if ctx.sampled {
                    flags |= tag::TRACE_SAMPLED;
                }
                if ctx.deadline_nanos.is_some() {
                    flags |= tag::TRACE_HAS_DEADLINE;
                }
                out.push(flags);
                if let Some(d) = ctx.deadline_nanos {
                    varint::put_u64(&mut out, d);
                }
                out.extend_from_slice(&inner.encode_payload());
            }
        }
        out
    }

    /// Decode one request payload. Trailing bytes are rejected.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut d = Dec::new(payload, "request");
        let req = match d.u8()? {
            tag::PING => Request::Ping,
            tag::PUT => Request::Put {
                key: d.bytes()?,
                value: d.bytes()?,
            },
            tag::DELETE => Request::Delete { key: d.bytes()? },
            tag::WRITE_BATCH => {
                let n = d.u64()? as usize;
                if n > MAX_FRAME_BYTES {
                    return Err(corrupt("request"));
                }
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(match d.u8()? {
                        tag::OP_PUT => BatchOp::Put {
                            key: d.bytes()?,
                            value: d.bytes()?,
                        },
                        tag::OP_DELETE => BatchOp::Delete { key: d.bytes()? },
                        _ => return Err(corrupt("batch op")),
                    });
                }
                Request::WriteBatch { ops }
            }
            tag::GET => Request::Get { key: d.bytes()? },
            tag::SCAN => {
                let start = d.bytes()?;
                let end = d.opt_bytes()?;
                let limit = d.u64()? as usize;
                let reverse = match d.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(corrupt("scan reverse flag")),
                };
                Request::Scan(ScanRequest {
                    start,
                    end,
                    limit,
                    reverse,
                })
            }
            tag::COMPACT => Request::Compact(match d.u8()? {
                tag::C_FLUSH => CompactionRequest::Flush {
                    partition: d.u64()? as usize,
                },
                tag::C_FLUSH_ALL => CompactionRequest::FlushAll,
                tag::C_INTERNAL => CompactionRequest::Internal {
                    partition: d.u64()? as usize,
                },
                tag::C_MAJOR => CompactionRequest::Major {
                    partition: d.u64()? as usize,
                },
                tag::C_RETENTION => CompactionRequest::MajorWithRetention,
                _ => return Err(corrupt("compaction request")),
            }),
            tag::TRACED => {
                let trace_id = d.u64()?;
                let flags = d.u8()?;
                if flags & !(tag::TRACE_SAMPLED | tag::TRACE_HAS_DEADLINE) != 0 {
                    return Err(corrupt("trace flags"));
                }
                let deadline_nanos = if flags & tag::TRACE_HAS_DEADLINE != 0 {
                    Some(d.u64()?)
                } else {
                    None
                };
                let inner = Request::decode(d.rest())?;
                if matches!(inner, Request::Traced { .. }) {
                    return Err(WireError::Corrupt("nested traced envelope".into()));
                }
                Request::Traced {
                    ctx: TraceContext {
                        trace_id,
                        sampled: flags & tag::TRACE_SAMPLED != 0,
                        deadline_nanos,
                    },
                    inner: Box::new(inner),
                }
            }
            t => return Err(WireError::Corrupt(format!("unknown request tag {t}"))),
        };
        d.finish()?;
        Ok(req)
    }

    /// Frame + write this request.
    pub fn write<W: Write>(&self, w: &mut W) -> Result<(), WireError> {
        write_frame(w, &self.encode_payload())
    }

    /// Read one framed request; `Ok(None)` on clean EOF.
    pub fn read<R: Read>(r: &mut R) -> Result<Option<Request>, WireError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(payload) => Ok(Some(Request::decode(&payload)?)),
        }
    }
}

impl Response {
    /// Encode this response's payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(tag::PONG),
            Response::Written { latency_nanos } => {
                out.push(tag::WRITTEN);
                varint::put_u64(&mut out, *latency_nanos);
            }
            Response::Value {
                value,
                latency_nanos,
            } => {
                out.push(tag::VALUE);
                put_opt_slice(&mut out, value);
                varint::put_u64(&mut out, *latency_nanos);
            }
            Response::Rows {
                rows,
                latency_nanos,
            } => {
                out.push(tag::ROWS);
                varint::put_u64(&mut out, rows.len() as u64);
                for (k, v) in rows {
                    varint::put_slice(&mut out, k);
                    varint::put_slice(&mut out, v);
                }
                varint::put_u64(&mut out, *latency_nanos);
            }
            Response::Compacted => out.push(tag::COMPACTED),
            Response::Error { code, message } => {
                out.push(tag::ERROR);
                varint::put_u64(&mut out, *code as u64);
                varint::put_slice(&mut out, message.as_bytes());
            }
        }
        out
    }

    /// Decode one response payload. Trailing bytes are rejected.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut d = Dec::new(payload, "response");
        let resp = match d.u8()? {
            tag::PONG => Response::Pong,
            tag::WRITTEN => Response::Written {
                latency_nanos: d.u64()?,
            },
            tag::VALUE => Response::Value {
                value: d.opt_bytes()?,
                latency_nanos: d.u64()?,
            },
            tag::ROWS => {
                let n = d.u64()? as usize;
                if n > MAX_FRAME_BYTES {
                    return Err(corrupt("response"));
                }
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let k = d.bytes()?;
                    let v = d.bytes()?;
                    rows.push((k, v));
                }
                Response::Rows {
                    rows,
                    latency_nanos: d.u64()?,
                }
            }
            tag::COMPACTED => Response::Compacted,
            tag::ERROR => {
                let code = d.u64()?;
                if code > u16::MAX as u64 {
                    return Err(corrupt("error code"));
                }
                let message =
                    String::from_utf8(d.bytes()?).map_err(|_| corrupt("error message utf-8"))?;
                Response::Error {
                    code: code as u16,
                    message,
                }
            }
            t => return Err(WireError::Corrupt(format!("unknown response tag {t}"))),
        };
        d.finish()?;
        Ok(resp)
    }

    /// Frame + write this response.
    pub fn write<W: Write>(&self, w: &mut W) -> Result<(), WireError> {
        write_frame(w, &self.encode_payload())
    }

    /// Read one framed response; `Ok(None)` on clean EOF.
    pub fn read<R: Read>(r: &mut R) -> Result<Option<Response>, WireError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(payload) => Ok(Some(Response::decode(&payload)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = req.encode_payload();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let payload = resp.encode_payload();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Put {
            key: b"k".to_vec(),
            value: vec![0u8; 300],
        });
        roundtrip_request(Request::Delete { key: vec![] });
        roundtrip_request(Request::WriteBatch {
            ops: vec![
                BatchOp::Put {
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                },
                BatchOp::Delete { key: b"b".to_vec() },
            ],
        });
        roundtrip_request(Request::Get {
            key: b"\x00\xff".to_vec(),
        });
        roundtrip_request(Request::Scan(
            ScanRequest::new()
                .start("a")
                .end("z")
                .limit(7)
                .reverse(true),
        ));
        roundtrip_request(Request::Scan(ScanRequest::new()));
        for c in [
            CompactionRequest::Flush { partition: 3 },
            CompactionRequest::FlushAll,
            CompactionRequest::Internal { partition: 0 },
            CompactionRequest::Major { partition: 9 },
            CompactionRequest::MajorWithRetention,
        ] {
            roundtrip_request(Request::Compact(c));
        }
    }

    #[test]
    fn traced_envelope_roundtrips() {
        roundtrip_request(Request::Traced {
            ctx: TraceContext {
                trace_id: 0xDEAD_BEEF,
                sampled: true,
                deadline_nanos: None,
            },
            inner: Box::new(Request::Get { key: b"k".to_vec() }),
        });
        roundtrip_request(Request::Traced {
            ctx: TraceContext {
                trace_id: u64::MAX,
                sampled: false,
                deadline_nanos: Some(5_000_000),
            },
            inner: Box::new(Request::Put {
                key: b"k".to_vec(),
                value: vec![7u8; 300],
            }),
        });
        roundtrip_request(Request::Traced {
            ctx: TraceContext::sampled(1),
            inner: Box::new(Request::Scan(ScanRequest::new().start("a").limit(3))),
        });
    }

    #[test]
    fn nested_traced_envelope_rejected() {
        let inner = Request::Traced {
            ctx: TraceContext::sampled(2),
            inner: Box::new(Request::Ping),
        };
        let nested = Request::Traced {
            ctx: TraceContext::sampled(1),
            inner: Box::new(inner),
        };
        assert!(matches!(
            Request::decode(&nested.encode_payload()),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn traced_envelope_bad_flags_rejected() {
        let mut payload = Vec::new();
        payload.push(7); // TRACED
        encoding::varint::put_u64(&mut payload, 1);
        payload.push(0b100); // undefined flag bit
        payload.push(0); // PING
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Written { latency_nanos: 42 });
        roundtrip_response(Response::Value {
            value: None,
            latency_nanos: 1,
        });
        roundtrip_response(Response::Value {
            value: Some(vec![9u8; 1000]),
            latency_nanos: u64::MAX,
        });
        roundtrip_response(Response::Rows {
            rows: vec![(b"k1".to_vec(), b"v1".to_vec()), (vec![], vec![])],
            latency_nanos: 5,
        });
        roundtrip_response(Response::Compacted);
        roundtrip_response(Response::Error {
            code: 8,
            message: "unsupported: nope".into(),
        });
    }

    #[test]
    fn frame_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_frames_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload-bytes").unwrap();
        // Flip one payload byte: CRC mismatch.
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(bad)),
            Err(WireError::Corrupt(_))
        ));
        // Truncate mid-payload: not a clean EOF.
        let bad = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(bad)),
            Err(WireError::Corrupt(_))
        ));
        // Oversized length prefix.
        let mut bad = buf.clone();
        bad[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut std::io::Cursor::new(bad)),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Request::Ping.encode_payload();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Request::decode(&[200]).is_err());
        assert!(Response::decode(&[200]).is_err());
        assert!(Request::decode(&[]).is_err());
    }
}
