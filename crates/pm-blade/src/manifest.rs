//! The versioned manifest: a durable log of table-lifecycle edits.
//!
//! Every state transition of the table lifecycle — flush output,
//! internal-compaction install, major-compaction install, table
//! retirement, WAL segment rotation, flush checkpoint — is one atomic
//! [`VersionEdit`] appended (CRC32C-framed, fsynced) to the current
//! manifest file in `wal_dir`. Recovery replays the edits to rebuild the
//! exact table set; a torn tail simply drops the uncommitted last edit.
//!
//! ```text
//! wal_dir/
//!   CURRENT            -> "MANIFEST-000007\n"   (swapped via rename)
//!   MANIFEST-000007    -> framed VersionEdits
//! frame: len u32 | crc32c(payload) masked u32 | payload
//! payload: tag u8 | edit fields (varints / length-prefixed slices)
//! ```
//!
//! Each partition's table set is logged as one *complete*
//! [`PartitionVersion`] per transition (last-writer-wins on replay)
//! rather than incremental add/remove deltas: a version is a few dozen
//! table references at this scale, and whole-version edits make replay
//! trivially idempotent. Every `manifest_snapshot_every` edits the log
//! is rewritten as a fresh snapshot file and the `CURRENT` pointer is
//! swapped via atomic rename, so the log never grows without bound.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use encoding::{crc, varint};
use sim::fault::{self, FaultDecision, FaultPlan};
use sim::{CostModel, Timeline};

/// Durable description of one SSTable. `SsTable::open` cannot recover
/// the key range or newest sequence from the file footer alone, so the
/// manifest carries them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SsdMeta {
    pub name: String,
    pub first: Vec<u8>,
    pub last: Vec<u8>,
    pub bytes: u64,
    pub max_seq: u64,
}

/// The complete table set of one partition at one point in time.
///
/// PM tables are named by their stable [`pm_device::RegionId`]s (the
/// region payload is self-describing, so the id is enough); SSTables
/// carry full [`SsdMeta`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionVersion {
    pub partition: u64,
    /// Unsorted PM level-0 tables, oldest first.
    pub unsorted: Vec<u64>,
    /// Sorted-run PM tables, ascending key order.
    pub sorted: Vec<u64>,
    /// Matrix-container rows, oldest first.
    pub matrix: Vec<u64>,
    /// SSD level-0 tables (RocksDB-like mode), oldest first.
    pub l0_tables: Vec<SsdMeta>,
    /// SSD levels: `levels[0]` is level-1.
    pub levels: Vec<Vec<SsdMeta>>,
    /// Dominant codec id of each PM table, in `unsorted` order followed
    /// by `sorted` order (encoding v2). Encoded *after* every other
    /// field so pre-codec manifests decode to an empty vec: recovery
    /// treats empty as "unknown, trust the self-describing regions".
    pub codecs: Vec<u64>,
}

/// One atomic manifest record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VersionEdit {
    /// Install a partition's complete table set.
    PartitionVersion(PartitionVersion),
    /// A flush made every record of `partition` with `seq <=
    /// durable_seq` durable below the WAL; replay skips them.
    FlushCheckpoint { partition: u64, durable_seq: u64 },
    /// The WAL rotated to segment `segment`.
    WalRotate { segment: u64 },
    /// High-water mark of the SSTable name counter.
    TableCounter { value: u64 },
}

const TAG_PARTITION_VERSION: u8 = 1;
const TAG_FLUSH_CHECKPOINT: u8 = 2;
const TAG_WAL_ROTATE: u8 = 3;
const TAG_TABLE_COUNTER: u8 = 4;

fn put_ssd_meta(out: &mut Vec<u8>, m: &SsdMeta) {
    varint::put_slice(out, m.name.as_bytes());
    varint::put_slice(out, &m.first);
    varint::put_slice(out, &m.last);
    varint::put_u64(out, m.bytes);
    varint::put_u64(out, m.max_seq);
}

fn read_ssd_meta(r: &mut varint::Reader<'_>) -> Option<SsdMeta> {
    let name = String::from_utf8(r.read_slice()?.to_vec()).ok()?;
    let first = r.read_slice()?.to_vec();
    let last = r.read_slice()?.to_vec();
    let bytes = r.read_u64()?;
    let max_seq = r.read_u64()?;
    Some(SsdMeta {
        name,
        first,
        last,
        bytes,
        max_seq,
    })
}

fn put_region_list(out: &mut Vec<u8>, ids: &[u64]) {
    varint::put_u64(out, ids.len() as u64);
    for &id in ids {
        varint::put_u64(out, id);
    }
}

fn read_region_list(r: &mut varint::Reader<'_>) -> Option<Vec<u64>> {
    let n = r.read_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(r.read_u64()?);
    }
    Some(out)
}

fn put_ssd_list(out: &mut Vec<u8>, tables: &[SsdMeta]) {
    varint::put_u64(out, tables.len() as u64);
    for t in tables {
        put_ssd_meta(out, t);
    }
}

fn read_ssd_list(r: &mut varint::Reader<'_>) -> Option<Vec<SsdMeta>> {
    let n = r.read_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(read_ssd_meta(r)?);
    }
    Some(out)
}

impl VersionEdit {
    /// Encode to the frame payload (tag byte + fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            VersionEdit::PartitionVersion(pv) => {
                out.push(TAG_PARTITION_VERSION);
                varint::put_u64(&mut out, pv.partition);
                put_region_list(&mut out, &pv.unsorted);
                put_region_list(&mut out, &pv.sorted);
                put_region_list(&mut out, &pv.matrix);
                put_ssd_list(&mut out, &pv.l0_tables);
                varint::put_u64(&mut out, pv.levels.len() as u64);
                for level in &pv.levels {
                    put_ssd_list(&mut out, level);
                }
                // Appended last so payloads written before encoding v2
                // (which simply end here) still decode: the reader
                // takes an empty trailer as "no codec ids logged".
                put_region_list(&mut out, &pv.codecs);
            }
            VersionEdit::FlushCheckpoint {
                partition,
                durable_seq,
            } => {
                out.push(TAG_FLUSH_CHECKPOINT);
                varint::put_u64(&mut out, *partition);
                varint::put_u64(&mut out, *durable_seq);
            }
            VersionEdit::WalRotate { segment } => {
                out.push(TAG_WAL_ROTATE);
                varint::put_u64(&mut out, *segment);
            }
            VersionEdit::TableCounter { value } => {
                out.push(TAG_TABLE_COUNTER);
                varint::put_u64(&mut out, *value);
            }
        }
        out
    }

    /// Decode a frame payload; `None` on truncation or an unknown tag.
    pub fn decode(payload: &[u8]) -> Option<VersionEdit> {
        let (&tag, rest) = payload.split_first()?;
        let mut r = varint::Reader::new(rest);
        let edit = match tag {
            TAG_PARTITION_VERSION => {
                let partition = r.read_u64()?;
                let unsorted = read_region_list(&mut r)?;
                let sorted = read_region_list(&mut r)?;
                let matrix = read_region_list(&mut r)?;
                let l0_tables = read_ssd_list(&mut r)?;
                let depth = r.read_u64()? as usize;
                let mut levels = Vec::with_capacity(depth.min(64));
                for _ in 0..depth {
                    levels.push(read_ssd_list(&mut r)?);
                }
                let codecs = if r.is_empty() {
                    Vec::new() // pre-codec payload
                } else {
                    read_region_list(&mut r)?
                };
                VersionEdit::PartitionVersion(PartitionVersion {
                    partition,
                    unsorted,
                    sorted,
                    matrix,
                    l0_tables,
                    levels,
                    codecs,
                })
            }
            TAG_FLUSH_CHECKPOINT => VersionEdit::FlushCheckpoint {
                partition: r.read_u64()?,
                durable_seq: r.read_u64()?,
            },
            TAG_WAL_ROTATE => VersionEdit::WalRotate {
                segment: r.read_u64()?,
            },
            TAG_TABLE_COUNTER => VersionEdit::TableCounter {
                value: r.read_u64()?,
            },
            _ => return None,
        };
        if !r.is_empty() {
            return None; // trailing garbage: treat as corrupt
        }
        Some(edit)
    }
}

/// Errors from manifest operations.
#[derive(Debug)]
pub enum ManifestError {
    Io(String),
    Corrupt(String),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest io: {e}"),
            ManifestError::Corrupt(e) => write!(f, "manifest corrupt: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e.to_string())
    }
}

/// The accumulated effect of replaying a manifest log.
#[derive(Clone, Debug, Default)]
pub struct ManifestState {
    /// Last logged version per partition.
    pub partitions: BTreeMap<u64, PartitionVersion>,
    /// Per-partition durable sequence watermark.
    pub checkpoints: BTreeMap<u64, u64>,
    /// Highest WAL segment number the log rotated to.
    pub wal_segment: u64,
    /// SSTable name-counter high-water mark.
    pub table_counter: u64,
    /// Edits applied (replayed + appended since open).
    pub edits_applied: u64,
}

impl ManifestState {
    fn apply(&mut self, edit: &VersionEdit) {
        match edit {
            VersionEdit::PartitionVersion(pv) => {
                self.partitions.insert(pv.partition, pv.clone());
            }
            VersionEdit::FlushCheckpoint {
                partition,
                durable_seq,
            } => {
                let wm = self.checkpoints.entry(*partition).or_insert(0);
                *wm = (*wm).max(*durable_seq);
            }
            VersionEdit::WalRotate { segment } => {
                self.wal_segment = self.wal_segment.max(*segment);
            }
            VersionEdit::TableCounter { value } => {
                self.table_counter = self.table_counter.max(*value);
            }
        }
        self.edits_applied += 1;
    }

    /// Edits that reconstruct this state from scratch (snapshot body).
    fn snapshot_edits(&self) -> Vec<VersionEdit> {
        let mut edits = Vec::new();
        edits.push(VersionEdit::TableCounter {
            value: self.table_counter,
        });
        edits.push(VersionEdit::WalRotate {
            segment: self.wal_segment,
        });
        for (&partition, &durable_seq) in &self.checkpoints {
            edits.push(VersionEdit::FlushCheckpoint {
                partition,
                durable_seq,
            });
        }
        for pv in self.partitions.values() {
            edits.push(VersionEdit::PartitionVersion(pv.clone()));
        }
        edits
    }
}

fn manifest_name(number: u64) -> String {
    format!("MANIFEST-{number:06}")
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc::mask(crc::crc32c(payload)).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode framed edits, stopping at the first torn or corrupt frame
/// (prefix property: everything before it was fsynced in order).
fn decode_frames(raw: &[u8]) -> Vec<VersionEdit> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= raw.len() {
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
        let stored = crc::unmask(u32::from_le_bytes(
            raw[pos + 4..pos + 8].try_into().unwrap(),
        ));
        let start = pos + 8;
        let Some(payload) = raw.get(start..start + len) else {
            break; // torn tail
        };
        if crc::crc32c(payload) != stored {
            break; // corrupt frame: the edit never committed
        }
        let Some(edit) = VersionEdit::decode(payload) else {
            break;
        };
        out.push(edit);
        pos = start + len;
    }
    out
}

/// An open manifest log: the durable source of truth for the table set.
pub struct Manifest {
    dir: PathBuf,
    file: File,
    number: u64,
    snapshot_every: u64,
    edits_since_snapshot: u64,
    state: ManifestState,
    cost: CostModel,
    fault: Option<Arc<FaultPlan>>,
}

impl Manifest {
    /// Open (or create) the manifest under `dir`, replaying the file the
    /// `CURRENT` pointer names. Returns the log positioned for appends.
    pub fn open(
        dir: impl Into<PathBuf>,
        snapshot_every: u64,
        cost: CostModel,
        fault: Option<Arc<FaultPlan>>,
    ) -> Result<Manifest, ManifestError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // Sweep debris from a crashed CURRENT swap.
        let _ = fs::remove_file(dir.join("CURRENT.tmp"));
        let current = dir.join("CURRENT");
        let (number, state, edits_since_snapshot) = if current.exists() {
            let name = fs::read_to_string(&current)?;
            let name = name.trim();
            let number: u64 = name
                .strip_prefix("MANIFEST-")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ManifestError::Corrupt(format!("bad CURRENT contents: {name}")))?;
            let path = dir.join(name);
            let mut raw = Vec::new();
            File::open(&path)
                .map_err(|e| {
                    ManifestError::Corrupt(format!("CURRENT names missing file {name}: {e}"))
                })?
                .read_to_end(&mut raw)?;
            let edits = decode_frames(&raw);
            let mut state = ManifestState::default();
            for edit in &edits {
                state.apply(edit);
            }
            (number, state, edits.len() as u64)
        } else {
            (1, ManifestState::default(), 0)
        };
        // Remove manifest files other than the live one (debris from a
        // crashed snapshot rewrite, or the pre-swap predecessor).
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(n) = name.strip_prefix("MANIFEST-") {
                if n.parse::<u64>().ok() != Some(number) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let path = dir.join(manifest_name(number));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut m = Manifest {
            dir,
            file,
            number,
            snapshot_every: snapshot_every.max(1),
            edits_since_snapshot,
            state,
            cost,
            fault,
        };
        if !m.dir.join("CURRENT").exists() {
            m.swap_current()?;
        }
        Ok(m)
    }

    /// The replayed (and since-appended) state.
    pub fn state(&self) -> &ManifestState {
        &self.state
    }

    /// Path of the live manifest file (for tests/debugging).
    pub fn current_path(&self) -> PathBuf {
        self.dir.join(manifest_name(self.number))
    }

    fn durable_write(&mut self, bytes: &[u8]) -> Result<(), ManifestError> {
        match fault::check_write(&self.fault, bytes.len()) {
            FaultDecision::Allow => {}
            FaultDecision::Deny { keep_prefix } => {
                if keep_prefix > 0 {
                    let _ = self.file.write_all(&bytes[..keep_prefix.min(bytes.len())]);
                    let _ = self.file.sync_data();
                }
                return Err(ManifestError::Io("crash injected: manifest append".into()));
            }
        }
        self.file.write_all(bytes)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Atomically point `CURRENT` at the live manifest file.
    fn swap_current(&mut self) -> Result<(), ManifestError> {
        let contents = format!("{}\n", manifest_name(self.number));
        if !fault::check_write(&self.fault, contents.len()).allowed() {
            return Err(ManifestError::Io("crash injected: CURRENT swap".into()));
        }
        let tmp = self.dir.join("CURRENT.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, self.dir.join("CURRENT"))?;
        Ok(())
    }

    /// Append one edit (fsynced) and fold it into the in-memory state.
    /// Triggers a snapshot rewrite every `snapshot_every` edits.
    pub fn append(&mut self, edit: &VersionEdit, tl: &mut Timeline) -> Result<(), ManifestError> {
        let framed = frame(&edit.encode());
        let len = framed.len();
        self.durable_write(&framed)?;
        tl.charge(self.cost.ssd.write(len));
        tl.charge(self.cost.ssd.persist);
        self.state.apply(edit);
        self.edits_since_snapshot += 1;
        if self.edits_since_snapshot >= self.snapshot_every {
            self.rewrite_snapshot(tl)?;
        }
        Ok(())
    }

    /// Write the full state as a fresh manifest file and swap `CURRENT`.
    /// A crash anywhere in here is safe: `CURRENT` flips atomically, and
    /// until it does recovery reads the old (complete) file.
    fn rewrite_snapshot(&mut self, tl: &mut Timeline) -> Result<(), ManifestError> {
        let old_number = self.number;
        let new_number = self.number + 1;
        let path = self.dir.join(manifest_name(new_number));
        let mut body = Vec::new();
        for edit in self.state.snapshot_edits() {
            body.extend_from_slice(&frame(&edit.encode()));
        }
        match fault::check_write(&self.fault, body.len()) {
            FaultDecision::Allow => {}
            FaultDecision::Deny { keep_prefix } => {
                if keep_prefix > 0 {
                    let _ = fs::write(&path, &body[..keep_prefix.min(body.len())]);
                }
                return Err(ManifestError::Io(
                    "crash injected: manifest snapshot".into(),
                ));
            }
        }
        let mut f = File::create(&path)?;
        f.write_all(&body)?;
        f.sync_data()?;
        tl.charge(self.cost.ssd.write(body.len()));
        tl.charge(self.cost.ssd.persist);
        self.file = OpenOptions::new().append(true).open(&path)?;
        self.number = new_number;
        self.swap_current()?;
        let _ = fs::remove_file(self.dir.join(manifest_name(old_number)));
        self.edits_since_snapshot = 0;
        Ok(())
    }
}

impl std::fmt::Debug for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manifest")
            .field("number", &self.number)
            .field("edits_applied", &self.state.edits_applied)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pmblade-manifest-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_pv(partition: u64) -> PartitionVersion {
        PartitionVersion {
            partition,
            unsorted: vec![3, 7],
            sorted: vec![1],
            matrix: vec![],
            l0_tables: vec![],
            levels: vec![vec![SsdMeta {
                name: "p000-L1-00000001.sst".into(),
                first: b"a".to_vec(),
                last: b"m".to_vec(),
                bytes: 4096,
                max_seq: 99,
            }]],
            codecs: vec![1, 0, 2],
        }
    }

    #[test]
    fn edit_encode_decode_roundtrip() {
        let edits = vec![
            VersionEdit::PartitionVersion(sample_pv(2)),
            VersionEdit::FlushCheckpoint {
                partition: 1,
                durable_seq: 500,
            },
            VersionEdit::WalRotate { segment: 9 },
            VersionEdit::TableCounter { value: 44 },
        ];
        for edit in edits {
            let decoded = VersionEdit::decode(&edit.encode()).unwrap();
            assert_eq!(decoded, edit);
        }
    }

    #[test]
    fn pre_codec_partition_version_decodes_with_empty_codecs() {
        // A payload written before encoding v2 ends right after the
        // levels list. Synthesize one by re-encoding without the codec
        // trailer and check it decodes to `codecs: vec![]`.
        let mut pv = sample_pv(3);
        pv.codecs.clear();
        let full = VersionEdit::PartitionVersion(pv.clone()).encode();
        // An empty codec list encodes as a single 0x00 varint; strip it
        // to get the exact pre-codec byte layout.
        assert_eq!(full.last(), Some(&0u8));
        let legacy = &full[..full.len() - 1];
        let decoded = VersionEdit::decode(legacy).unwrap();
        assert_eq!(decoded, VersionEdit::PartitionVersion(pv));
    }

    #[test]
    fn codec_ids_roundtrip_through_encode() {
        let pv = sample_pv(5);
        assert_eq!(pv.codecs, vec![1, 0, 2]);
        let decoded = VersionEdit::decode(&VersionEdit::PartitionVersion(pv.clone()).encode());
        assert_eq!(decoded, Some(VersionEdit::PartitionVersion(pv)));
    }

    #[test]
    fn decode_rejects_truncation_and_unknown_tags() {
        let payload = VersionEdit::PartitionVersion(sample_pv(0)).encode();
        assert!(VersionEdit::decode(&payload[..payload.len() - 1]).is_none());
        assert!(VersionEdit::decode(&[0xEE, 1, 2, 3]).is_none());
        assert!(VersionEdit::decode(&[]).is_none());
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmp("roundtrip");
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        {
            let mut m = Manifest::open(&dir, 1000, cost, None).unwrap();
            m.append(&VersionEdit::TableCounter { value: 7 }, &mut tl)
                .unwrap();
            m.append(&VersionEdit::PartitionVersion(sample_pv(0)), &mut tl)
                .unwrap();
            m.append(
                &VersionEdit::FlushCheckpoint {
                    partition: 0,
                    durable_seq: 42,
                },
                &mut tl,
            )
            .unwrap();
        }
        let m2 = Manifest::open(&dir, 1000, cost, None).unwrap();
        let s = m2.state();
        assert_eq!(s.table_counter, 7);
        assert_eq!(s.checkpoints.get(&0), Some(&42));
        assert_eq!(s.partitions.get(&0), Some(&sample_pv(0)));
        assert_eq!(s.edits_applied, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_partition_version_wins() {
        let dir = tmp("lww");
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        {
            let mut m = Manifest::open(&dir, 1000, cost, None).unwrap();
            m.append(&VersionEdit::PartitionVersion(sample_pv(0)), &mut tl)
                .unwrap();
            let mut newer = sample_pv(0);
            newer.unsorted = vec![11];
            m.append(&VersionEdit::PartitionVersion(newer), &mut tl)
                .unwrap();
        }
        let m2 = Manifest::open(&dir, 1000, cost, None).unwrap();
        assert_eq!(m2.state().partitions.get(&0).unwrap().unsorted, vec![11]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rewrite_compacts_and_preserves_state() {
        let dir = tmp("snapshot");
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        {
            let mut m = Manifest::open(&dir, 4, cost, None).unwrap();
            for i in 0..10 {
                m.append(&VersionEdit::TableCounter { value: i }, &mut tl)
                    .unwrap();
            }
            m.append(&VersionEdit::PartitionVersion(sample_pv(1)), &mut tl)
                .unwrap();
            assert!(m.number > 1, "snapshot must have rotated the file");
        }
        // Only one MANIFEST file (plus CURRENT) remains.
        let manifests: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let n = e.unwrap().file_name().to_string_lossy().into_owned();
                n.starts_with("MANIFEST-").then_some(n)
            })
            .collect();
        assert_eq!(manifests.len(), 1, "got {manifests:?}");
        let m2 = Manifest::open(&dir, 4, cost, None).unwrap();
        assert_eq!(m2.state().table_counter, 9);
        assert_eq!(m2.state().partitions.get(&1), Some(&sample_pv(1)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_drops_only_last_edit() {
        let dir = tmp("torn");
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        {
            let mut m = Manifest::open(&dir, 1000, cost, None).unwrap();
            m.append(&VersionEdit::TableCounter { value: 5 }, &mut tl)
                .unwrap();
            m.append(&VersionEdit::WalRotate { segment: 3 }, &mut tl)
                .unwrap();
        }
        let path = {
            let m = Manifest::open(&dir, 1000, cost, None).unwrap();
            m.current_path()
        };
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 2]).unwrap();
        let m2 = Manifest::open(&dir, 1000, cost, None).unwrap();
        assert_eq!(m2.state().table_counter, 5);
        assert_eq!(m2.state().wal_segment, 0, "torn edit must not apply");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_during_append_loses_only_that_edit() {
        let dir = tmp("fault");
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        let plan = FaultPlan::armed(1, true, 17);
        {
            let mut m = Manifest::open(&dir, 1000, cost, Some(Arc::clone(&plan))).unwrap();
            // CURRENT creation consumed no plan events (open with no
            // fault on fresh dir? it did swap_current → one write).
            m.append(&VersionEdit::TableCounter { value: 1 }, &mut tl)
                .ok();
            let err = m
                .append(&VersionEdit::TableCounter { value: 2 }, &mut tl)
                .unwrap_err();
            assert!(matches!(err, ManifestError::Io(_)));
        }
        plan.disarm();
        let m2 = Manifest::open(&dir, 1000, cost, None).unwrap();
        assert!(m2.state().table_counter <= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_during_snapshot_keeps_old_manifest_live() {
        let dir = tmp("snapfault");
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        {
            let mut m = Manifest::open(&dir, 1000, cost, None).unwrap();
            for i in 0..3 {
                m.append(&VersionEdit::TableCounter { value: i }, &mut tl)
                    .unwrap();
            }
        }
        {
            // Re-open with snapshot_every=4 and a plan that dies on the
            // snapshot body write (the 2nd durable write: append then
            // snapshot).
            let plan = FaultPlan::armed(1, false, 0);
            let mut m = Manifest::open(&dir, 4, cost, Some(plan)).unwrap();
            let err = m
                .append(&VersionEdit::TableCounter { value: 50 }, &mut tl)
                .unwrap_err();
            assert!(matches!(err, ManifestError::Io(_)), "got {err:?}");
        }
        // The appended edit itself was durable; the snapshot wasn't, and
        // recovery still reads a consistent log.
        let m2 = Manifest::open(&dir, 1000, cost, None).unwrap();
        assert_eq!(m2.state().table_counter, 50);
        let _ = fs::remove_dir_all(&dir);
    }
}
