//! Engine configuration.

use pmtable::{CodecMode, MetaExtractor, PmTableOptions};
use sim::{CostModel, SimDuration};

use crate::costmodel::CodecCostTable;
use crate::telemetry::{EventListener, ListenerSet};

/// Which system the engine behaves as — the paper's comparison matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Full PM-Blade: PM level-0, internal compaction, cost-based
    /// compaction strategy, hot-partition retention.
    PmBlade,
    /// "PMBlade-PM": PM level-0 but the conventional strategy — no
    /// internal compaction; when the unsorted-table count trips the
    /// threshold, the whole level-0 is compacted to level-1.
    PmBladePm,
    /// "PMBlade-SSD"/RocksDB-like: level-0 lives on the SSD as SSTables
    /// and major compaction triggers at `l0_table_trigger` tables.
    SsdLevel0,
    /// MatrixKV-like: PM level-0 organised as a matrix container with
    /// column compaction and cross-hint search, no hot retention.
    MatrixKv,
}

/// Where maintenance work (flushes, internal/major compactions) runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MaintenanceMode {
    /// Execute maintenance synchronously at the Algorithm-1 trigger
    /// points, on the thread that tripped them. Deterministic: a fixed
    /// workload produces the exact same compaction sequence every run,
    /// which the simulation tests rely on. The triggering write is
    /// charged the maintenance's virtual time.
    #[default]
    Inline,
    /// Enqueue maintenance jobs for the engine's background worker pool
    /// (§V): writes only detect triggers and enqueue, workers execute.
    /// Writers are throttled by RocksDB-style slowdown/stall thresholds
    /// when they outrun the workers. Job *timing* becomes
    /// scheduling-dependent; final key/value state is identical to
    /// [`MaintenanceMode::Inline`] for the same workload.
    Background,
}

/// How the key space is split into independently-managed partitions.
#[derive(Clone, Debug)]
pub enum Partitioner {
    /// One partition for everything.
    Single,
    /// Range partitions: `boundaries` are the sorted upper-exclusive
    /// split keys; `boundaries.len() + 1` partitions result.
    Ranges(Vec<Vec<u8>>),
}

impl Partitioner {
    /// Number of partitions.
    pub fn count(&self) -> usize {
        match self {
            Partitioner::Single => 1,
            Partitioner::Ranges(b) => b.len() + 1,
        }
    }

    /// Partition index owning `key`.
    pub fn locate(&self, key: &[u8]) -> usize {
        match self {
            Partitioner::Single => 0,
            Partitioner::Ranges(b) => b.partition_point(|split| split.as_slice() <= key),
        }
    }

    /// Evenly spaced split points over formatted numeric keys
    /// `prefix{00000000}`, handy for benchmark workloads.
    pub fn numeric(prefix: &str, domain: u64, partitions: usize) -> Self {
        assert!(partitions >= 1);
        if partitions == 1 {
            return Partitioner::Single;
        }
        let step = domain / partitions as u64;
        let boundaries = (1..partitions as u64)
            .map(|i| format!("{prefix}{:010}", i * step).into_bytes())
            .collect();
        Partitioner::Ranges(boundaries)
    }
}

/// Tunable cost scalars from Table II of the paper.
#[derive(Clone, Copy, Debug)]
pub struct CostScalars {
    /// `I_b`: cost of binary-searching one PM table (seconds).
    pub binary_search: SimDuration,
    /// `I_p`: internal-compaction cost per record.
    pub internal_per_record: SimDuration,
    /// `I_s`: major-compaction cost per record.
    pub major_per_record: SimDuration,
    /// `t̂_p`: wall time internal compaction spends per record.
    pub internal_time_per_record: SimDuration,
}

impl Default for CostScalars {
    fn default() -> Self {
        CostScalars {
            binary_search: SimDuration::from_micros(2),
            internal_per_record: SimDuration::from_micros(2),
            major_per_record: SimDuration::from_micros(5),
            // t̂_p is a tunable scalar (Table II); calibrated so Eq 1
            // fires around n_i ≈ 10 unsorted tables at the virtual-time
            // read rates the engine actually observes (~5k reads/s).
            internal_time_per_record: SimDuration::from_micros(40),
        }
    }
}

/// Full engine options.
#[derive(Clone, Debug)]
pub struct Options {
    pub mode: Mode,
    pub partitioner: Partitioner,
    /// Machine cost model shared by all devices.
    pub cost: CostModel,
    /// PM pool capacity in bytes (the paper uses 80 GB; scale down).
    pub pm_capacity: usize,
    /// Memtable freeze threshold in bytes (64 MB in the paper; scale).
    pub memtable_bytes: usize,
    /// Unsorted L0 tables per partition that force internal compaction
    /// regardless of the cost model (safety valve).
    pub l0_unsorted_hard_cap: usize,
    /// SSD-level-0 table count triggering major compaction in
    /// [`Mode::SsdLevel0`] (RocksDB default 4).
    pub l0_table_trigger: usize,
    /// `τ_w`: partition size that lets Eq 2 trigger internal compaction.
    pub tau_w: usize,
    /// `τ_m`: total PM usage that triggers major compaction.
    pub tau_m: usize,
    /// `τ_t`: PM budget for partitions retained by the knapsack.
    pub tau_t: usize,
    /// Cost scalars for Eqs 1–3.
    pub scalars: CostScalars,
    /// PM table encoding options. `Db::open` copies
    /// [`Options::pm_filter_bits_per_key`] into
    /// `pm_table.filter_bits_per_key` and [`Options::pm_codec_mode`]
    /// into `pm_table.codec`, so the engine-level knobs win.
    pub pm_table: PmTableOptions,
    /// Per-flush codec policy for PM level-0 tables:
    /// [`CodecMode::Auto`] (the default) analyzes each flush batch's key
    /// shape and picks the codec minimizing PM bytes plus decode cost
    /// against the calibrated [`Options::codec_costs`]; the other
    /// variants force one codec for every flush (each group still falls
    /// back to prefix encoding when the forced codec cannot represent
    /// it or would grow the group).
    pub pm_codec_mode: CodecMode,
    /// Measured per-codec decode cost and density feeding codec
    /// selection and the Eq 1/Eq 2 decode terms. The zero default makes
    /// codec selection resolve to the prefix baseline; `Db::open`
    /// replaces it with [`CodecCostTable::calibrate`] of
    /// [`Options::cost`].
    pub codec_costs: CodecCostTable,
    /// Bloom-filter budget for PM level-0 tables, in bits per distinct
    /// user key (RocksDB-style; 10 ≈ 1% false positives). 0 disables
    /// the filters entirely — every `get` walks the group search of
    /// every overlapping table, the pre-acceleration read path.
    pub pm_filter_bits_per_key: usize,
    /// DRAM capacity of the shared decoded-group cache for PM level-0
    /// reads, in bytes. Charged like [`Options::block_cache_bytes`]; 0
    /// disables the cache (every lookup decodes its group from PM).
    pub pm_group_cache_bytes: usize,
    /// Level-1 target size per partition; level n target is
    /// `l1_target * level_multiplier^(n-1)`.
    pub l1_target: usize,
    pub level_multiplier: usize,
    /// Max bytes per output table (PM table or SSTable) in compactions.
    pub max_table_bytes: usize,
    /// DRAM block-cache capacity for SSD reads.
    pub block_cache_bytes: usize,
    /// Compaction scheduler profile for major compaction timing.
    pub scheduler: coroutine::SchedulerConfig,
    /// MatrixKV: extra flush construction overhead (fraction of the
    /// flush cost spent building the matrix cross-hint structure).
    pub matrix_flush_overhead: f64,
    /// MatrixKV: number of column slices per container compaction.
    pub matrix_columns: usize,
    /// Directory for the write-ahead log; `None` disables the WAL.
    pub wal_dir: Option<std::path::PathBuf>,
    /// WAL segment size: the active segment rotates once it exceeds
    /// this many bytes, and segments whose records are all below the
    /// flush checkpoints are deleted. Only meaningful with
    /// [`Options::wal_dir`] set.
    pub wal_segment_bytes: usize,
    /// Rewrite the manifest as a full snapshot (and swap `CURRENT`)
    /// every this many edits, bounding recovery replay length.
    pub manifest_snapshot_every: u64,
    /// Crash-injection plan threaded into every durable device (WAL,
    /// manifest, PM backing, SSD backing). `None` in production;
    /// recovery tests install a plan to kill the virtual process at a
    /// chosen write/sync boundary.
    pub fault_plan: Option<std::sync::Arc<sim::FaultPlan>>,
    /// Capacity of the compaction-span ring buffer behind
    /// `Db::compaction_log()` and `MetricsSnapshot::spans`. When full,
    /// the *oldest* spans are evicted (and counted as dropped in
    /// snapshots). Must be at least 1.
    pub event_log_capacity: usize,
    /// Event listeners invoked on flush/compaction/commit spans and
    /// cost-model decisions. See
    /// [`EventListener`](crate::telemetry::EventListener) for the
    /// reentrancy rules.
    pub listeners: ListenerSet,
    /// Inline (deterministic, default) or background (worker-pool)
    /// maintenance execution.
    pub maintenance: MaintenanceMode,
    /// Background worker threads servicing the maintenance queue
    /// (ignored in [`MaintenanceMode::Inline`]). Must be at least 1.
    pub maintenance_workers: usize,
    /// Unsorted level-0 tables per partition beyond which writes to that
    /// partition are *slowed down* in background mode.
    pub l0_slowdown_trigger: usize,
    /// Unsorted level-0 tables per partition beyond which writes to that
    /// partition *stall* until a worker catches up. Must exceed
    /// [`Options::l0_slowdown_trigger`].
    pub l0_stall_trigger: usize,
    /// Memtable debt (memtable size as a multiple of
    /// [`Options::memtable_bytes`]) that slows writes down in background
    /// mode. The memtable keeps absorbing writes past its freeze
    /// threshold while the flush job waits for a worker.
    pub memtable_slowdown_debt: usize,
    /// Memtable debt multiple that stalls writes. Must exceed
    /// [`Options::memtable_slowdown_debt`].
    pub memtable_stall_debt: usize,
    /// Virtual-time penalty charged to each write admitted under
    /// slowdown (the RocksDB `delayed_write_rate` analogue).
    pub slowdown_delay: SimDuration,
    /// Sample 1 in N engine-originated requests for end-to-end stage
    /// tracing; 0 disables sampling entirely (wire-carried sampled
    /// contexts are still honored). Sampling only observes the virtual
    /// clock — it never charges it.
    pub trace_sample_every: u64,
    /// Keep a sampled request in the slow-query flight recorder only
    /// if its total virtual latency is at least this many nanoseconds;
    /// 0 keeps every sampled request.
    pub trace_slow_query_nanos: u64,
    /// Capacity of the slow-query flight-recorder ring (oldest traces
    /// are evicted and counted as dropped). Must be at least 1.
    pub trace_recorder_capacity: usize,
}

impl Default for Options {
    /// Laptop-scale defaults preserving the paper's ratios
    /// (80 GB PM : 64 MB memtable ≈ 80 MB : 64 KB).
    fn default() -> Self {
        Options {
            mode: Mode::PmBlade,
            partitioner: Partitioner::Single,
            cost: CostModel::default(),
            pm_capacity: 80 << 20,
            memtable_bytes: 64 << 10,
            l0_unsorted_hard_cap: 64,
            l0_table_trigger: 4,
            tau_w: 1 << 20,
            tau_m: 72 << 20,
            tau_t: 48 << 20,
            scalars: CostScalars::default(),
            pm_table: PmTableOptions {
                group_size: 16,
                extractor: MetaExtractor::None,
                filter_bits_per_key: 0,
                codec: CodecMode::Prefix,
            },
            pm_codec_mode: CodecMode::Auto,
            codec_costs: CodecCostTable::default(),
            pm_filter_bits_per_key: 10,
            pm_group_cache_bytes: 4 << 20,
            l1_target: 8 << 20,
            level_multiplier: 10,
            max_table_bytes: 2 << 20,
            block_cache_bytes: 8 << 20,
            scheduler: coroutine::SchedulerConfig::default(),
            matrix_flush_overhead: 0.6,
            matrix_columns: 8,
            wal_dir: None,
            wal_segment_bytes: 4 << 20,
            manifest_snapshot_every: 64,
            fault_plan: None,
            event_log_capacity: 1024,
            listeners: ListenerSet::new(),
            maintenance: MaintenanceMode::Inline,
            maintenance_workers: 2,
            l0_slowdown_trigger: 12,
            l0_stall_trigger: 24,
            memtable_slowdown_debt: 2,
            memtable_stall_debt: 4,
            slowdown_delay: SimDuration::from_micros(100),
            trace_sample_every: 1024,
            trace_slow_query_nanos: 0,
            trace_recorder_capacity: 256,
        }
    }
}

impl Options {
    /// Start a validated configuration from the defaults. Unlike
    /// constructing `Options` directly (which `Db::open` accepts
    /// as-is), [`OptionsBuilder::build`] rejects inconsistent
    /// configurations with [`DbError::Config`].
    pub fn builder() -> OptionsBuilder {
        OptionsBuilder {
            opts: Options::default(),
        }
    }

    /// The paper's "PMBlade" configuration at a given PM scale.
    pub fn pm_blade(pm_capacity: usize) -> Self {
        Options {
            pm_capacity,
            tau_m: pm_capacity - pm_capacity / 10,
            tau_t: pm_capacity * 6 / 10,
            ..Options::default()
        }
    }

    /// "PMBlade-PM": PM level-0, conventional strategy.
    pub fn pm_blade_pm(pm_capacity: usize) -> Self {
        Options {
            mode: Mode::PmBladePm,
            ..Options::pm_blade(pm_capacity)
        }
    }

    /// "PMBlade-SSD" / RocksDB-like.
    pub fn rocksdb_like() -> Self {
        Options {
            mode: Mode::SsdLevel0,
            ..Options::default()
        }
    }

    /// MatrixKV-like with the given PM capacity (8 GB default in the
    /// paper, also run at 80 GB).
    pub fn matrixkv(pm_capacity: usize) -> Self {
        Options {
            mode: Mode::MatrixKv,
            ..Options::pm_blade(pm_capacity)
        }
    }
}

/// Checked construction of [`Options`].
///
/// Every setter mirrors the `Options` field of the same name; `build`
/// cross-validates the configuration and returns
/// [`DbError::Config`](crate::engine::DbError::Config) with a
/// human-readable diagnostic on the first violation found.
#[derive(Clone, Debug)]
pub struct OptionsBuilder {
    opts: Options,
}

impl OptionsBuilder {
    /// Start from an existing configuration (e.g. a mode preset).
    pub fn from_options(opts: Options) -> Self {
        OptionsBuilder { opts }
    }

    pub fn mode(mut self, mode: Mode) -> Self {
        self.opts.mode = mode;
        self
    }

    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.opts.partitioner = partitioner;
        self
    }

    pub fn pm_capacity(mut self, bytes: usize) -> Self {
        self.opts.pm_capacity = bytes;
        self
    }

    pub fn memtable_bytes(mut self, bytes: usize) -> Self {
        self.opts.memtable_bytes = bytes;
        self
    }

    pub fn tau_w(mut self, bytes: usize) -> Self {
        self.opts.tau_w = bytes;
        self
    }

    pub fn tau_m(mut self, bytes: usize) -> Self {
        self.opts.tau_m = bytes;
        self
    }

    pub fn tau_t(mut self, bytes: usize) -> Self {
        self.opts.tau_t = bytes;
        self
    }

    pub fn l0_unsorted_hard_cap(mut self, cap: usize) -> Self {
        self.opts.l0_unsorted_hard_cap = cap;
        self
    }

    pub fn l0_table_trigger(mut self, trigger: usize) -> Self {
        self.opts.l0_table_trigger = trigger;
        self
    }

    pub fn l1_target(mut self, bytes: usize) -> Self {
        self.opts.l1_target = bytes;
        self
    }

    pub fn level_multiplier(mut self, multiplier: usize) -> Self {
        self.opts.level_multiplier = multiplier;
        self
    }

    pub fn max_table_bytes(mut self, bytes: usize) -> Self {
        self.opts.max_table_bytes = bytes;
        self
    }

    pub fn block_cache_bytes(mut self, bytes: usize) -> Self {
        self.opts.block_cache_bytes = bytes;
        self
    }

    pub fn pm_filter_bits_per_key(mut self, bits: usize) -> Self {
        self.opts.pm_filter_bits_per_key = bits;
        self
    }

    pub fn pm_group_cache_bytes(mut self, bytes: usize) -> Self {
        self.opts.pm_group_cache_bytes = bytes;
        self
    }

    /// Per-flush codec policy for PM level-0 tables (`Auto` analyzes
    /// each flush batch; the other variants force one codec).
    pub fn pm_codec_mode(mut self, mode: CodecMode) -> Self {
        self.opts.pm_codec_mode = mode;
        self
    }

    pub fn matrix_columns(mut self, columns: usize) -> Self {
        self.opts.matrix_columns = columns;
        self
    }

    pub fn wal_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.opts.wal_dir = Some(dir.into());
        self
    }

    pub fn wal_segment_bytes(mut self, bytes: usize) -> Self {
        self.opts.wal_segment_bytes = bytes;
        self
    }

    pub fn manifest_snapshot_every(mut self, edits: u64) -> Self {
        self.opts.manifest_snapshot_every = edits;
        self
    }

    /// Install a crash-injection plan (recovery tests only).
    pub fn fault_plan(mut self, plan: std::sync::Arc<sim::FaultPlan>) -> Self {
        self.opts.fault_plan = Some(plan);
        self
    }

    pub fn event_log_capacity(mut self, capacity: usize) -> Self {
        self.opts.event_log_capacity = capacity;
        self
    }

    pub fn maintenance(mut self, mode: MaintenanceMode) -> Self {
        self.opts.maintenance = mode;
        self
    }

    pub fn maintenance_workers(mut self, workers: usize) -> Self {
        self.opts.maintenance_workers = workers;
        self
    }

    pub fn l0_slowdown_trigger(mut self, tables: usize) -> Self {
        self.opts.l0_slowdown_trigger = tables;
        self
    }

    pub fn l0_stall_trigger(mut self, tables: usize) -> Self {
        self.opts.l0_stall_trigger = tables;
        self
    }

    pub fn memtable_slowdown_debt(mut self, multiples: usize) -> Self {
        self.opts.memtable_slowdown_debt = multiples;
        self
    }

    pub fn memtable_stall_debt(mut self, multiples: usize) -> Self {
        self.opts.memtable_stall_debt = multiples;
        self
    }

    pub fn slowdown_delay(mut self, delay: SimDuration) -> Self {
        self.opts.slowdown_delay = delay;
        self
    }

    pub fn scheduler(mut self, cfg: coroutine::SchedulerConfig) -> Self {
        self.opts.scheduler = cfg;
        self
    }

    /// Sample 1 in `n` requests for stage tracing (0 = off).
    pub fn trace_sample_every(mut self, n: u64) -> Self {
        self.opts.trace_sample_every = n;
        self
    }

    /// Flight-recorder admission threshold in virtual nanoseconds
    /// (0 = keep every sampled request).
    pub fn trace_slow_query_nanos(mut self, nanos: u64) -> Self {
        self.opts.trace_slow_query_nanos = nanos;
        self
    }

    /// Capacity of the slow-query flight-recorder ring.
    pub fn trace_recorder_capacity(mut self, capacity: usize) -> Self {
        self.opts.trace_recorder_capacity = capacity;
        self
    }

    /// Register an event listener (may be called repeatedly; listeners
    /// are invoked in registration order).
    pub fn add_event_listener(mut self, listener: std::sync::Arc<dyn EventListener>) -> Self {
        self.opts.listeners.add(listener);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<Options, crate::engine::DbError> {
        use crate::engine::DbError;
        let o = &self.opts;
        let fail = |msg: String| Err(DbError::Config(msg));
        if o.partitioner.count() == 0 {
            return fail("at least one partition is required".into());
        }
        if let Partitioner::Ranges(bounds) = &o.partitioner {
            if bounds.is_empty() {
                return fail(
                    "range partitioner needs at least one boundary \
                     (use Partitioner::Single for one partition)"
                        .into(),
                );
            }
            if !bounds.windows(2).all(|w| w[0] < w[1]) {
                return fail("partition boundaries must be strictly ascending".into());
            }
        }
        if o.memtable_bytes == 0 {
            return fail("memtable_bytes must be positive".into());
        }
        let uses_pm = matches!(o.mode, Mode::PmBlade | Mode::PmBladePm | Mode::MatrixKv);
        if uses_pm {
            if o.pm_capacity < o.memtable_bytes {
                return fail(format!(
                    "pm_capacity ({}) must hold at least one memtable \
                     flush ({})",
                    o.pm_capacity, o.memtable_bytes
                ));
            }
            if o.tau_m > o.pm_capacity {
                return fail(format!(
                    "tau_m ({}) cannot exceed pm_capacity ({})",
                    o.tau_m, o.pm_capacity
                ));
            }
            if o.tau_t > o.tau_m {
                return fail(format!(
                    "tau_t ({}) cannot exceed tau_m ({}): the retention \
                     budget must fit below the major-compaction trigger",
                    o.tau_t, o.tau_m
                ));
            }
        }
        if o.max_table_bytes == 0 {
            return fail("max_table_bytes must be positive".into());
        }
        if o.pm_filter_bits_per_key > 64 {
            return fail(format!(
                "pm_filter_bits_per_key ({}) is capped at 64: past that \
                 the false-positive rate no longer improves and the \
                 filter section just burns PM",
                o.pm_filter_bits_per_key
            ));
        }
        if o.l1_target == 0 {
            return fail("l1_target must be positive".into());
        }
        if o.level_multiplier < 2 {
            return fail(format!(
                "level_multiplier ({}) must be at least 2",
                o.level_multiplier
            ));
        }
        if o.mode == Mode::MatrixKv && o.matrix_columns == 0 {
            return fail("matrix_columns must be at least 1".into());
        }
        if o.l0_unsorted_hard_cap == 0 {
            return fail("l0_unsorted_hard_cap must be at least 1".into());
        }
        if o.l0_table_trigger == 0 {
            return fail("l0_table_trigger must be at least 1".into());
        }
        if o.event_log_capacity == 0 {
            return fail("event_log_capacity must be at least 1".into());
        }
        if o.wal_segment_bytes == 0 {
            return fail("wal_segment_bytes must be positive".into());
        }
        if o.manifest_snapshot_every == 0 {
            return fail(
                "manifest_snapshot_every must be at least 1 \
                 (the manifest log must eventually compact)"
                    .into(),
            );
        }
        if o.maintenance_workers == 0 {
            return fail(
                "maintenance_workers must be at least 1 \
                 (the background pool needs a worker)"
                    .into(),
            );
        }
        if o.l0_slowdown_trigger == 0 {
            return fail("l0_slowdown_trigger must be at least 1".into());
        }
        if o.l0_slowdown_trigger >= o.l0_stall_trigger {
            return fail(format!(
                "l0_slowdown_trigger ({}) must stay below \
                 l0_stall_trigger ({}): the stall threshold is the hard \
                 backstop behind the slowdown",
                o.l0_slowdown_trigger, o.l0_stall_trigger
            ));
        }
        if o.memtable_slowdown_debt == 0 {
            return fail("memtable_slowdown_debt must be at least 1".into());
        }
        if o.memtable_slowdown_debt >= o.memtable_stall_debt {
            return fail(format!(
                "memtable_slowdown_debt ({}) must stay below \
                 memtable_stall_debt ({}): the stall threshold is the \
                 hard backstop behind the slowdown",
                o.memtable_slowdown_debt, o.memtable_stall_debt
            ));
        }
        if o.trace_recorder_capacity == 0 {
            return fail(
                "trace_recorder_capacity must be at least 1 \
                 (wire-carried sampled traces land there even when \
                 trace_sample_every is 0)"
                    .into(),
            );
        }
        if o.scheduler.cores == 0 {
            return fail("scheduler.cores must be at least 1".into());
        }
        if o.scheduler.max_io == 0 {
            return fail("scheduler.max_io must be at least 1".into());
        }
        Ok(self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_single_maps_everything_to_zero() {
        let p = Partitioner::Single;
        assert_eq!(p.count(), 1);
        assert_eq!(p.locate(b""), 0);
        assert_eq!(p.locate(b"zzz"), 0);
    }

    #[test]
    fn partitioner_ranges_locates_by_boundary() {
        let p = Partitioner::Ranges(vec![b"h".to_vec(), b"p".to_vec()]);
        assert_eq!(p.count(), 3);
        assert_eq!(p.locate(b"apple"), 0);
        assert_eq!(p.locate(b"h"), 1, "boundaries are upper-exclusive");
        assert_eq!(p.locate(b"mango"), 1);
        assert_eq!(p.locate(b"zebra"), 2);
    }

    #[test]
    fn numeric_partitioner_is_balanced() {
        let p = Partitioner::numeric("user", 1_000_000, 4);
        assert_eq!(p.count(), 4);
        assert_eq!(p.locate(b"user0000000001"), 0);
        assert_eq!(p.locate(b"user0000250000"), 1);
        assert_eq!(p.locate(b"user0000500000"), 2);
        assert_eq!(p.locate(b"user0000999999"), 3);
    }

    #[test]
    fn builder_accepts_default_and_presets() {
        assert!(Options::builder().build().is_ok());
        assert!(OptionsBuilder::from_options(Options::pm_blade(1 << 20))
            .build()
            .is_ok());
        assert!(OptionsBuilder::from_options(Options::rocksdb_like())
            .build()
            .is_ok());
        let opts = Options::builder()
            .mode(Mode::PmBlade)
            .pm_capacity(1 << 20)
            .memtable_bytes(8 << 10)
            .tau_m(768 << 10)
            .tau_t(384 << 10)
            .build()
            .unwrap();
        assert_eq!(opts.pm_capacity, 1 << 20);
    }

    #[test]
    fn builder_rejects_inconsistent_configs() {
        let msg = |r: Result<Options, crate::engine::DbError>| match r {
            Err(crate::engine::DbError::Config(m)) => m,
            other => panic!("expected Config error, got {other:?}"),
        };
        assert!(msg(Options::builder().memtable_bytes(0).build()).contains("memtable_bytes"));
        assert!(msg(Options::builder()
            .pm_capacity(4 << 10)
            .memtable_bytes(64 << 10)
            .tau_m(1 << 10)
            .tau_t(1 << 10)
            .build())
        .contains("pm_capacity"));
        assert!(msg(Options::builder().tau_m(96 << 20).tau_t(90 << 20).build()).contains("tau_m"));
        assert!(msg(Options::builder().tau_t(80 << 20).tau_m(72 << 20).build()).contains("tau_t"));
        assert!(msg(Options::builder()
            .partitioner(Partitioner::Ranges(vec![b"m".to_vec(), b"f".to_vec(),]))
            .build())
        .contains("ascending"));
        assert!(msg(Options::builder().level_multiplier(1).build()).contains("level_multiplier"));
        assert!(msg(Options::builder().max_table_bytes(0).build()).contains("max_table_bytes"));
        assert!(msg(Options::builder().pm_filter_bits_per_key(65).build())
            .contains("pm_filter_bits_per_key"));
        // 0 legitimately disables the filter and the cache.
        assert!(Options::builder()
            .pm_filter_bits_per_key(0)
            .pm_group_cache_bytes(0)
            .build()
            .is_ok());
        assert!(
            msg(Options::builder().event_log_capacity(0).build()).contains("event_log_capacity")
        );
        assert!(msg(Options::builder().wal_segment_bytes(0).build()).contains("wal_segment_bytes"));
        assert!(msg(Options::builder().manifest_snapshot_every(0).build())
            .contains("manifest_snapshot_every"));
        assert!(msg(Options::builder().trace_recorder_capacity(0).build())
            .contains("trace_recorder_capacity"));
        // Sampling off is a legal steady state.
        assert!(Options::builder().trace_sample_every(0).build().is_ok());
        // SSD-only mode doesn't need PM headroom.
        assert!(Options::builder()
            .mode(Mode::SsdLevel0)
            .pm_capacity(0)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_bad_maintenance_configs() {
        let msg = |r: Result<Options, crate::engine::DbError>| match r {
            Err(crate::engine::DbError::Config(m)) => m,
            other => panic!("expected Config error, got {other:?}"),
        };
        assert!(
            msg(Options::builder().maintenance_workers(0).build()).contains("maintenance_workers")
        );
        // Slowdown thresholds must stay strictly below their stall
        // backstops.
        assert!(msg(Options::builder()
            .l0_slowdown_trigger(8)
            .l0_stall_trigger(8)
            .build())
        .contains("l0_slowdown_trigger"));
        assert!(msg(Options::builder()
            .l0_slowdown_trigger(9)
            .l0_stall_trigger(8)
            .build())
        .contains("l0_slowdown_trigger"));
        assert!(msg(Options::builder()
            .memtable_slowdown_debt(4)
            .memtable_stall_debt(4)
            .build())
        .contains("memtable_slowdown_debt"));
        assert!(msg(Options::builder().memtable_slowdown_debt(0).build())
            .contains("memtable_slowdown_debt"));
        assert!(
            msg(Options::builder().l0_slowdown_trigger(0).build()).contains("l0_slowdown_trigger")
        );
        // SchedulerConfig sanity: zero cores or a zero I/O window would
        // wedge the §V admission policy.
        let bad_cores = coroutine::SchedulerConfig {
            cores: 0,
            ..Default::default()
        };
        assert!(msg(Options::builder().scheduler(bad_cores).build()).contains("scheduler.cores"));
        let bad_io = coroutine::SchedulerConfig {
            max_io: 0,
            ..Default::default()
        };
        assert!(msg(Options::builder().scheduler(bad_io).build()).contains("scheduler.max_io"));
        // A consistent background configuration passes.
        let opts = Options::builder()
            .maintenance(MaintenanceMode::Background)
            .maintenance_workers(3)
            .l0_slowdown_trigger(6)
            .l0_stall_trigger(12)
            .build()
            .unwrap();
        assert_eq!(opts.maintenance, MaintenanceMode::Background);
        assert_eq!(opts.maintenance_workers, 3);
    }

    #[test]
    fn codec_mode_knob_defaults_to_auto_with_zero_cost_table() {
        let opts = Options::default();
        assert_eq!(opts.pm_codec_mode, CodecMode::Auto);
        // The raw table options stay prefix so directly-constructed
        // builders keep byte-stable output; `Db::open` projects the
        // engine knob (and a calibrated cost table) on top.
        assert_eq!(opts.pm_table.codec, CodecMode::Prefix);
        assert_eq!(opts.codec_costs, CodecCostTable::default());
        let built = Options::builder()
            .pm_codec_mode(CodecMode::Delta)
            .build()
            .unwrap();
        assert_eq!(built.pm_codec_mode, CodecMode::Delta);
    }

    #[test]
    fn mode_presets_are_consistent() {
        assert_eq!(Options::pm_blade(1 << 20).mode, Mode::PmBlade);
        assert_eq!(Options::pm_blade_pm(1 << 20).mode, Mode::PmBladePm);
        assert_eq!(Options::rocksdb_like().mode, Mode::SsdLevel0);
        assert_eq!(Options::matrixkv(1 << 20).mode, Mode::MatrixKv);
        let o = Options::pm_blade(100);
        assert!(o.tau_m < o.pm_capacity);
        assert!(o.tau_t < o.tau_m);
    }
}
