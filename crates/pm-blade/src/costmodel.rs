//! The three compaction cost models (§IV-C, Table II, Algorithm 1).
//!
//! 1. **Read-amplification relief (Eq 1)** — trigger internal compaction
//!    for partition `p_i` when the read time it would save per second
//!    exceeds the compaction's own work rate:
//!    `n̂ʳᵢ · (nᵢ/2) · I_b  >  I_p / t̂_p`.
//! 2. **SSD write-amplification relief (Eq 2)** — trigger internal
//!    compaction when the duplicate records it would remove save more
//!    major-compaction cost than the internal pass costs:
//!    `(n_bef − n_aft) · I_s  >  n_bef · I_p`, estimating
//!    `n_bef ≈ nʷᵢ` and the removable duplicates by the observed update
//!    count `nᵘᵢ` (so `n_aft ≈ nʷᵢ − nᵘᵢ`).
//! 3. **Warm-data retention (Eq 3)** — at major compaction, keep the
//!    hottest partitions in PM: maximize `Σ nʳᵢ` subject to
//!    `Σ sᵢ ≤ τ_t`, solved greedily by read density `nʳᵢ / sᵢ`.

use sim::{Counter, SimDuration, SimInstant};

use crate::options::CostScalars;
use crate::telemetry::CostDecision;

/// Per-partition access counters from Table II. The engine resets them
/// when a compaction touches the partition ("re-zeroed when a major
/// compaction or internal compaction occurs").
///
/// The read/write/update tallies are atomic [`Counter`]s so the hot
/// read path can bump them while holding only the partition's *read*
/// lock; `window_start` is plain data, mutated only under the write
/// lock (compactions).
#[derive(Clone, Debug)]
pub struct PartitionCounters {
    /// `n_i^r`: reads since the window started.
    pub reads: Counter,
    /// `n_i^w`: writes since the window started.
    pub writes: Counter,
    /// `n_i^u`: writes that overwrote an existing key (updates).
    pub updates: Counter,
    /// Start of the observation window on the engine's virtual clock.
    pub window_start: SimInstant,
}

impl PartitionCounters {
    pub fn new(now: SimInstant) -> Self {
        PartitionCounters {
            reads: Counter::default(),
            writes: Counter::default(),
            updates: Counter::default(),
            window_start: now,
        }
    }

    /// `n̂_i^r`: reads per virtual second over the window.
    pub fn read_rate(&self, now: SimInstant) -> f64 {
        let secs = now.duration_since(self.window_start).as_secs_f64();
        if secs <= 0.0 {
            // A zero-length window with reads counts as very hot.
            return if self.reads.get() > 0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.reads.get() as f64 / secs
    }

    /// Reset at compaction time.
    pub fn reset(&mut self, now: SimInstant) {
        *self = PartitionCounters::new(now);
    }
}

/// Eq 1: should partition `p_i` run an internal compaction to relieve
/// read amplification? `unsorted` is `n_i`.
pub fn read_benefit_positive(
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
) -> bool {
    read_benefit_positive_filtered(counters, unsorted, now, scalars, 0.0)
}

/// Eq 1 adjusted for per-table bloom filters: a probe the filter prunes
/// costs ~0, so the read amplification a merge would relieve is not
/// `n_i/2` but `n_i·(1 − prune)/2`, where `prune` is the observed
/// fraction of filter checks that ruled a table out. With effective
/// filters the benefit side shrinks and internal compaction triggers
/// later — exactly the paper's Eq 1 with the filtered probe cost.
pub fn read_benefit_positive_filtered(
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
    prune_ratio: f64,
) -> bool {
    if unsorted < 2 {
        return false; // nothing to merge
    }
    let rate = counters.read_rate(now);
    if rate == 0.0 {
        return false;
    }
    let effective = unsorted as f64 * (1.0 - prune_ratio.clamp(0.0, 1.0));
    let benefit_per_sec = rate * (effective / 2.0) * scalars.binary_search.as_secs_f64();
    let work_rate = scalars.internal_per_record.as_secs_f64()
        / scalars.internal_time_per_record.as_secs_f64().max(1e-12);
    benefit_per_sec > work_rate
}

/// Eq 2: does removing duplicates now save more major-compaction work
/// than the internal pass costs?
///
/// The benefit side estimates removable duplicates from the window's
/// update count (`n_aft ≈ n_w − n_u`, following the paper's use of the
/// update counter); the cost side charges `I_p` for every record the
/// internal pass must rewrite — the whole level-0 (`l0_records`), not
/// just the window's writes, since compaction rewrites everything.
pub fn write_benefit_positive(
    counters: &PartitionCounters,
    l0_records: usize,
    scalars: &CostScalars,
) -> bool {
    let (writes, updates) = (counters.writes.get(), counters.updates.get());
    if writes == 0 || l0_records == 0 {
        return false;
    }
    let removable = updates.min(writes) as f64;
    let saved = removable * scalars.major_per_record.as_secs_f64();
    let spent = l0_records as f64 * scalars.internal_per_record.as_secs_f64();
    saved > spent
}

/// One candidate for the Eq 3 knapsack.
#[derive(Clone, Copy, Debug)]
pub struct RetentionCandidate {
    pub partition: usize,
    /// `n_i^r` over the current window.
    pub reads: u64,
    /// `s_i`: PM bytes held.
    pub bytes: usize,
}

/// Eq 3 (greedy): pick the partition set Φ to *retain* in PM, maximizing
/// total reads subject to `Σ s_i ≤ budget`. Returns the partition ids to
/// retain; everything else is the major-compaction victim set `P − Φ`.
pub fn select_retained(candidates: &[RetentionCandidate], budget: usize) -> Vec<usize> {
    let mut sorted: Vec<&RetentionCandidate> = candidates.iter().collect();
    // Greedy by read density n_i^r / s_i, ties broken toward smaller
    // partitions (cheaper to keep).
    sorted.sort_by(|a, b| {
        let da = a.reads as f64 / a.bytes.max(1) as f64;
        let db = b.reads as f64 / b.bytes.max(1) as f64;
        db.partial_cmp(&da)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.bytes.cmp(&b.bytes))
    });
    let mut total = 0usize;
    let mut retained = Vec::new();
    for c in sorted {
        if c.bytes == 0 {
            continue; // nothing to retain
        }
        if total + c.bytes <= budget {
            total += c.bytes;
            retained.push(c.partition);
        }
    }
    retained.sort_unstable();
    retained
}

/// Eq 1 with its inputs and verdict packaged for telemetry: the same
/// evaluation as [`read_benefit_positive`], reported as a
/// [`CostDecision`] for listeners and spans.
pub fn explain_read_benefit(
    partition: usize,
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
) -> CostDecision {
    explain_read_benefit_filtered(partition, counters, unsorted, now, scalars, 0.0)
}

/// [`explain_read_benefit`] with the bloom prune ratio folded in (see
/// [`read_benefit_positive_filtered`]).
pub fn explain_read_benefit_filtered(
    partition: usize,
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
    prune_ratio: f64,
) -> CostDecision {
    CostDecision::ReadBenefit {
        partition,
        read_rate: counters.read_rate(now),
        unsorted,
        triggered: read_benefit_positive_filtered(counters, unsorted, now, scalars, prune_ratio),
    }
}

/// Eq 2 with its inputs and verdict packaged for telemetry. `gated`
/// ands in the τ_w size gate the engine applies on top of the raw
/// benefit comparison (so `triggered` reports the *effective* verdict).
pub fn explain_write_benefit(
    partition: usize,
    counters: &PartitionCounters,
    l0_records: usize,
    gated: bool,
    scalars: &CostScalars,
) -> CostDecision {
    CostDecision::WriteBenefit {
        partition,
        window_writes: counters.writes.get(),
        window_updates: counters.updates.get(),
        l0_records,
        triggered: gated && write_benefit_positive(counters, l0_records, scalars),
    }
}

/// Convenience: expected read-cost saving per second for diagnostics.
pub fn read_benefit_rate(
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
) -> SimDuration {
    let rate = counters.read_rate(now);
    if !rate.is_finite() {
        return SimDuration::from_secs(1);
    }
    SimDuration::from_nanos(
        (rate * (unsorted as f64 / 2.0) * scalars.binary_search.as_nanos() as f64) as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;

    fn scalars() -> CostScalars {
        CostScalars::default()
    }

    fn at(secs: u64) -> SimInstant {
        SimInstant::ORIGIN + SimDuration::from_secs(secs)
    }

    #[test]
    fn read_rate_is_reads_per_second() {
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        c.reads.add(500);
        assert!((c.read_rate(at(10)) - 50.0).abs() < 1e-9);
        // Zero-length window with reads → hot.
        assert!(c.read_rate(SimInstant::ORIGIN).is_infinite());
        c.reads.reset();
        assert_eq!(c.read_rate(SimInstant::ORIGIN), 0.0);
    }

    #[test]
    fn eq1_needs_reads_and_unsorted_tables() {
        let s = scalars();
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        // No reads: never trigger.
        assert!(!read_benefit_positive(&c, 10, at(1), &s));
        // Reads but only one unsorted table: nothing to merge.
        c.reads.add(1_000_000);
        assert!(!read_benefit_positive(&c, 1, at(1), &s));
        // Hot partition with many unsorted tables: trigger.
        assert!(read_benefit_positive(&c, 8, at(1), &s));
    }

    #[test]
    fn eq1_threshold_scales_with_read_rate() {
        let s = scalars();
        // Work rate = I_p/t_p = 0.05. Benefit = rate * n/2 * I_b.
        // With n=4 and I_b=2us: rate must exceed 0.05/(2*2e-6) = 12.5k/s.
        let cold = PartitionCounters::new(SimInstant::ORIGIN);
        cold.reads.add(5_000); // 5k/s over 1s
        assert!(!read_benefit_positive(&cold, 4, at(1), &s));
        let hot = PartitionCounters::new(SimInstant::ORIGIN);
        hot.reads.add(50_000); // 50k/s
        assert!(read_benefit_positive(&hot, 4, at(1), &s));
    }

    #[test]
    fn eq1_filtered_delays_trigger_as_filters_prune() {
        let s = scalars();
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        c.reads.add(50_000); // 50k/s over 1s: triggers unfiltered at n=4
        assert!(read_benefit_positive_filtered(&c, 4, at(1), &s, 0.0));
        // Filters pruning 90% of probes shrink the benefit 10×: below
        // threshold now (12.5k/s needed unfiltered → 125k/s at 0.9).
        assert!(!read_benefit_positive_filtered(&c, 4, at(1), &s, 0.9));
        // Perfect filters: pruned probes cost ~0, never trigger on reads.
        assert!(!read_benefit_positive_filtered(&c, 100, at(1), &s, 1.0));
        // Out-of-range ratios clamp instead of flipping the sign.
        assert!(read_benefit_positive_filtered(&c, 4, at(1), &s, -3.0));
        assert!(!read_benefit_positive_filtered(&c, 4, at(1), &s, 7.0));
        // Delegation: ratio 0 matches the unfiltered form everywhere.
        assert_eq!(
            read_benefit_positive(&c, 4, at(1), &s),
            read_benefit_positive_filtered(&c, 4, at(1), &s, 0.0)
        );
    }

    #[test]
    fn eq2_triggers_on_update_heavy_windows() {
        let s = scalars();
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        // I_s = 5us, I_p = 2us: need removable > l0_records * 2/5.
        c.writes.add(1000);
        c.updates.add(100); // 100 removable vs 1000 L0 records: not worth it
        assert!(!write_benefit_positive(&c, 1000, &s));
        c.updates.add(400); // 500 removable: worth it
        assert!(write_benefit_positive(&c, 1000, &s));
        // A big L0 makes the same update count uneconomical.
        assert!(!write_benefit_positive(&c, 10_000, &s));
        // Empty window or empty L0 never triggers.
        let empty = PartitionCounters::new(SimInstant::ORIGIN);
        assert!(!write_benefit_positive(&empty, 1000, &s));
        assert!(!write_benefit_positive(&c, 0, &s));
    }

    #[test]
    fn knapsack_prefers_dense_partitions() {
        let candidates = vec![
            RetentionCandidate {
                partition: 0,
                reads: 100,
                bytes: 100,
            },
            RetentionCandidate {
                partition: 1,
                reads: 1000,
                bytes: 100,
            },
            RetentionCandidate {
                partition: 2,
                reads: 10,
                bytes: 100,
            },
        ];
        // Budget fits two.
        let kept = select_retained(&candidates, 200);
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn knapsack_respects_budget_exactly() {
        let candidates = vec![
            RetentionCandidate {
                partition: 0,
                reads: 50,
                bytes: 60,
            },
            RetentionCandidate {
                partition: 1,
                reads: 49,
                bytes: 60,
            },
        ];
        // Only one fits.
        assert_eq!(select_retained(&candidates, 100), vec![0]);
        // Zero budget retains nothing.
        assert!(select_retained(&candidates, 0).is_empty());
        // Large budget retains all.
        assert_eq!(select_retained(&candidates, 1000), vec![0, 1]);
    }

    #[test]
    fn knapsack_skips_empty_partitions_and_greedy_fills_gaps() {
        let candidates = vec![
            RetentionCandidate {
                partition: 0,
                reads: 0,
                bytes: 0,
            },
            RetentionCandidate {
                partition: 1,
                reads: 500,
                bytes: 90,
            },
            RetentionCandidate {
                partition: 2,
                reads: 100,
                bytes: 10,
            },
        ];
        // Density: p2 (10/byte) > p1 (5.5/byte). Both fit in 100.
        assert_eq!(select_retained(&candidates, 100), vec![1, 2]);
        // Budget 50: p2 first (dense), p1 no longer fits.
        assert_eq!(select_retained(&candidates, 50), vec![2]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_knapsack_respects_budget_and_is_nonempty_when_possible(
            sizes in proptest::collection::vec(1usize..10_000, 1..20),
            reads in proptest::collection::vec(0u64..100_000, 1..20),
            budget in 0usize..50_000,
        ) {
            let n = sizes.len().min(reads.len());
            let candidates: Vec<RetentionCandidate> = (0..n)
                .map(|i| RetentionCandidate {
                    partition: i,
                    reads: reads[i],
                    bytes: sizes[i],
                })
                .collect();
            let kept = select_retained(&candidates, budget);
            // Budget respected.
            let total: usize = kept
                .iter()
                .map(|&p| candidates[p].bytes)
                .sum();
            proptest::prop_assert!(total <= budget);
            // Ids valid and unique.
            let mut ids = kept.clone();
            ids.dedup();
            proptest::prop_assert_eq!(ids.len(), kept.len());
            proptest::prop_assert!(kept.iter().all(|&p| p < n));
            // If anything fits, the greedy picks something.
            if candidates.iter().any(|c| c.bytes > 0 && c.bytes <= budget) {
                proptest::prop_assert!(!kept.is_empty());
            }
        }
    }

    #[test]
    fn counters_reset_clears_window() {
        let mut c = PartitionCounters::new(SimInstant::ORIGIN);
        c.reads.add(10);
        c.writes.add(20);
        c.updates.add(5);
        c.reset(at(3));
        assert_eq!(c.reads.get(), 0);
        assert_eq!(c.writes.get(), 0);
        assert_eq!(c.updates.get(), 0);
        assert_eq!(c.window_start, at(3));
    }
}
