//! The three compaction cost models (§IV-C, Table II, Algorithm 1).
//!
//! 1. **Read-amplification relief (Eq 1)** — trigger internal compaction
//!    for partition `p_i` when the read time it would save per second
//!    exceeds the compaction's own work rate:
//!    `n̂ʳᵢ · (nᵢ/2) · I_b  >  I_p / t̂_p`.
//! 2. **SSD write-amplification relief (Eq 2)** — trigger internal
//!    compaction when the duplicate records it would remove save more
//!    major-compaction cost than the internal pass costs:
//!    `(n_bef − n_aft) · I_s  >  n_bef · I_p`, estimating
//!    `n_bef ≈ nʷᵢ` and the removable duplicates by the observed update
//!    count `nᵘᵢ` (so `n_aft ≈ nʷᵢ − nᵘᵢ`).
//! 3. **Warm-data retention (Eq 3)** — at major compaction, keep the
//!    hottest partitions in PM: maximize `Σ nʳᵢ` subject to
//!    `Σ sᵢ ≤ τ_t`, solved greedily by read density `nʳᵢ / sᵢ`.

use encoding::delta::CodecStats;
use pm_device::PmPool;
use pmtable::{
    CodecMode, L0Table, MetaExtractor, OwnedEntry, PmTable, PmTableBuilder, PmTableOptions,
    CODEC_COUNT,
};
use sim::{CostModel, Counter, SimDuration, SimInstant, Timeline};

use crate::options::CostScalars;
use crate::telemetry::CostDecision;

/// Per-partition access counters from Table II. The engine resets them
/// when a compaction touches the partition ("re-zeroed when a major
/// compaction or internal compaction occurs").
///
/// The read/write/update tallies are atomic [`Counter`]s so the hot
/// read path can bump them while holding only the partition's *read*
/// lock; `window_start` is plain data, mutated only under the write
/// lock (compactions).
#[derive(Clone, Debug)]
pub struct PartitionCounters {
    /// `n_i^r`: reads since the window started.
    pub reads: Counter,
    /// `n_i^w`: writes since the window started.
    pub writes: Counter,
    /// `n_i^u`: writes that overwrote an existing key (updates).
    pub updates: Counter,
    /// Start of the observation window on the engine's virtual clock.
    pub window_start: SimInstant,
}

impl PartitionCounters {
    pub fn new(now: SimInstant) -> Self {
        PartitionCounters {
            reads: Counter::default(),
            writes: Counter::default(),
            updates: Counter::default(),
            window_start: now,
        }
    }

    /// `n̂_i^r`: reads per virtual second over the window.
    pub fn read_rate(&self, now: SimInstant) -> f64 {
        let secs = now.duration_since(self.window_start).as_secs_f64();
        if secs <= 0.0 {
            // A zero-length window with reads counts as very hot.
            return if self.reads.get() > 0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.reads.get() as f64 / secs
    }

    /// Reset at compaction time.
    pub fn reset(&mut self, now: SimInstant) {
        *self = PartitionCounters::new(now);
    }
}

/// Eq 1: should partition `p_i` run an internal compaction to relieve
/// read amplification? `unsorted` is `n_i`.
pub fn read_benefit_positive(
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
) -> bool {
    read_benefit_positive_filtered(counters, unsorted, now, scalars, 0.0)
}

/// Eq 1 adjusted for per-table bloom filters: a probe the filter prunes
/// costs ~0, so the read amplification a merge would relieve is not
/// `n_i/2` but `n_i·(1 − prune)/2`, where `prune` is the observed
/// fraction of filter checks that ruled a table out. With effective
/// filters the benefit side shrinks and internal compaction triggers
/// later — exactly the paper's Eq 1 with the filtered probe cost.
pub fn read_benefit_positive_filtered(
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
    prune_ratio: f64,
) -> bool {
    read_benefit_positive_coded(
        counters,
        unsorted,
        now,
        scalars,
        prune_ratio,
        SimDuration::ZERO,
    )
}

/// Eq 1 with the level-0 tables' decode cost folded into the probe term:
/// each probe of a coded table binary-searches it *and* decodes one
/// group, so the effective `I_b` is `binary_search + probe_decode`.
/// `probe_decode` is the entries-weighted mean group-decode cost over
/// the partition's level-0 codecs (zero for all-prefix level-0s, which
/// makes this exactly [`read_benefit_positive_filtered`]).
pub fn read_benefit_positive_coded(
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
    prune_ratio: f64,
    probe_decode: SimDuration,
) -> bool {
    if unsorted < 2 {
        return false; // nothing to merge
    }
    let rate = counters.read_rate(now);
    if rate == 0.0 {
        return false;
    }
    let effective = unsorted as f64 * (1.0 - prune_ratio.clamp(0.0, 1.0));
    let probe = (scalars.binary_search + probe_decode).as_secs_f64();
    let benefit_per_sec = rate * (effective / 2.0) * probe;
    let work_rate = scalars.internal_per_record.as_secs_f64()
        / scalars.internal_time_per_record.as_secs_f64().max(1e-12);
    benefit_per_sec > work_rate
}

/// Eq 2: does removing duplicates now save more major-compaction work
/// than the internal pass costs?
///
/// The benefit side estimates removable duplicates from the window's
/// update count (`n_aft ≈ n_w − n_u`, following the paper's use of the
/// update counter); the cost side charges `I_p` for every record the
/// internal pass must rewrite — the whole level-0 (`l0_records`), not
/// just the window's writes, since compaction rewrites everything.
pub fn write_benefit_positive(
    counters: &PartitionCounters,
    l0_records: usize,
    scalars: &CostScalars,
) -> bool {
    write_benefit_positive_coded(counters, l0_records, scalars, SimDuration::ZERO)
}

/// Eq 2 with the level-0 decode cost folded into the internal pass:
/// rewriting a record from a coded table first decodes it, so the
/// per-record cost the compaction pays is
/// `internal_per_record + decode_per_record`. `decode_per_record` is the
/// entries-weighted mean per-entry decode cost over the partition's
/// level-0 codecs (zero for all-prefix level-0s, which makes this
/// exactly [`write_benefit_positive`]). Pricier decoding raises the
/// spend side, so Eq 2 triggers later on heavily-coded partitions.
pub fn write_benefit_positive_coded(
    counters: &PartitionCounters,
    l0_records: usize,
    scalars: &CostScalars,
    decode_per_record: SimDuration,
) -> bool {
    let (writes, updates) = (counters.writes.get(), counters.updates.get());
    if writes == 0 || l0_records == 0 {
        return false;
    }
    let removable = updates.min(writes) as f64;
    let saved = removable * scalars.major_per_record.as_secs_f64();
    let spent = l0_records as f64 * (scalars.internal_per_record + decode_per_record).as_secs_f64();
    saved > spent
}

/// One candidate for the Eq 3 knapsack.
#[derive(Clone, Copy, Debug)]
pub struct RetentionCandidate {
    pub partition: usize,
    /// `n_i^r` over the current window.
    pub reads: u64,
    /// `s_i`: PM bytes held.
    pub bytes: usize,
}

/// Eq 3 (greedy): pick the partition set Φ to *retain* in PM, maximizing
/// total reads subject to `Σ s_i ≤ budget`. Returns the partition ids to
/// retain; everything else is the major-compaction victim set `P − Φ`.
pub fn select_retained(candidates: &[RetentionCandidate], budget: usize) -> Vec<usize> {
    let mut sorted: Vec<&RetentionCandidate> = candidates.iter().collect();
    // Greedy by read density n_i^r / s_i, ties broken toward smaller
    // partitions (cheaper to keep).
    sorted.sort_by(|a, b| {
        let da = a.reads as f64 / a.bytes.max(1) as f64;
        let db = b.reads as f64 / b.bytes.max(1) as f64;
        db.partial_cmp(&da)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.bytes.cmp(&b.bytes))
    });
    let mut total = 0usize;
    let mut retained = Vec::new();
    for c in sorted {
        if c.bytes == 0 {
            continue; // nothing to retain
        }
        if total + c.bytes <= budget {
            total += c.bytes;
            retained.push(c.partition);
        }
    }
    retained.sort_unstable();
    retained
}

/// Eq 1 with its inputs and verdict packaged for telemetry: the same
/// evaluation as [`read_benefit_positive`], reported as a
/// [`CostDecision`] for listeners and spans.
pub fn explain_read_benefit(
    partition: usize,
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
) -> CostDecision {
    explain_read_benefit_filtered(partition, counters, unsorted, now, scalars, 0.0)
}

/// [`explain_read_benefit`] with the bloom prune ratio folded in (see
/// [`read_benefit_positive_filtered`]).
pub fn explain_read_benefit_filtered(
    partition: usize,
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
    prune_ratio: f64,
) -> CostDecision {
    explain_read_benefit_coded(
        partition,
        counters,
        unsorted,
        now,
        scalars,
        prune_ratio,
        SimDuration::ZERO,
    )
}

/// [`explain_read_benefit_filtered`] with the level-0 probe-decode cost
/// folded in (see [`read_benefit_positive_coded`]).
#[allow(clippy::too_many_arguments)]
pub fn explain_read_benefit_coded(
    partition: usize,
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
    prune_ratio: f64,
    probe_decode: SimDuration,
) -> CostDecision {
    CostDecision::ReadBenefit {
        partition,
        read_rate: counters.read_rate(now),
        unsorted,
        triggered: read_benefit_positive_coded(
            counters,
            unsorted,
            now,
            scalars,
            prune_ratio,
            probe_decode,
        ),
    }
}

/// Eq 2 with its inputs and verdict packaged for telemetry. `gated`
/// ands in the τ_w size gate the engine applies on top of the raw
/// benefit comparison (so `triggered` reports the *effective* verdict).
pub fn explain_write_benefit(
    partition: usize,
    counters: &PartitionCounters,
    l0_records: usize,
    gated: bool,
    scalars: &CostScalars,
) -> CostDecision {
    explain_write_benefit_coded(
        partition,
        counters,
        l0_records,
        gated,
        scalars,
        SimDuration::ZERO,
    )
}

/// [`explain_write_benefit`] with the level-0 per-record decode cost
/// folded in (see [`write_benefit_positive_coded`]).
pub fn explain_write_benefit_coded(
    partition: usize,
    counters: &PartitionCounters,
    l0_records: usize,
    gated: bool,
    scalars: &CostScalars,
    decode_per_record: SimDuration,
) -> CostDecision {
    CostDecision::WriteBenefit {
        partition,
        window_writes: counters.writes.get(),
        window_updates: counters.updates.get(),
        l0_records,
        triggered: gated
            && write_benefit_positive_coded(counters, l0_records, scalars, decode_per_record),
    }
}

/// Convenience: expected read-cost saving per second for diagnostics.
pub fn read_benefit_rate(
    counters: &PartitionCounters,
    unsorted: usize,
    now: SimInstant,
    scalars: &CostScalars,
) -> SimDuration {
    let rate = counters.read_rate(now);
    if !rate.is_finite() {
        return SimDuration::from_secs(1);
    }
    SimDuration::from_nanos(
        (rate * (unsorted as f64 / 2.0) * scalars.binary_search.as_nanos() as f64) as u64,
    )
}

/// Measured per-codec decode cost and density, calibrated once at
/// engine open ([`CodecCostTable::calibrate`]) and consulted on every
/// flush by [`select_codec`] and on every Eq 1/Eq 2 evaluation (the
/// `_coded` variants above). Indexed by codec id
/// (`pmtable::CODEC_PREFIX`/`CODEC_DELTA`/`CODEC_FIXED`).
///
/// The zero default is deliberate: with an all-zero table every codec
/// scores identically, ties resolve to the lowest id, and the engine
/// behaves exactly like the pre-codec build — tests that construct
/// `Options` directly keep their byte-for-byte behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CodecCostTable {
    /// Virtual nanos to decode one group, per codec.
    pub decode_group_nanos: [u64; CODEC_COUNT],
    /// Virtual nanos of decode work per entry, per codec.
    pub decode_entry_nanos: [u64; CODEC_COUNT],
    /// Encoded PM bytes per entry on the calibration workload, per
    /// codec. Zero for codecs the calibration could not build.
    pub bytes_per_entry: [f64; CODEC_COUNT],
}

impl CodecCostTable {
    /// Entries on the synthetic calibration table. Large enough that
    /// per-table overheads (header, meta layer) amortize out of the
    /// per-entry figures, small enough to keep `Db::open` cheap.
    const CALIBRATION_ENTRIES: usize = 1024;

    /// Measure each codec once on a synthetic timeseries table
    /// (monotonic 8-byte big-endian keys, fixed 8-byte values — the
    /// shape where all three codecs are eligible) against `cost`.
    /// Everything runs on scratch [`Timeline`]s driven purely by the
    /// virtual clock, so the result is deterministic: two engines with
    /// the same [`CostModel`] calibrate to identical tables, which the
    /// parity and trace-overhead tests rely on.
    pub fn calibrate(cost: &CostModel) -> CodecCostTable {
        let mut table = CodecCostTable::default();
        let n = Self::CALIBRATION_ENTRIES;
        let entries: Vec<OwnedEntry> = (0..n)
            .map(|i| {
                let key = (1_700_000_000u64 + 3 * i as u64).to_be_bytes().to_vec();
                let value = (40_000u64 + 3 * i as u64).to_be_bytes().to_vec();
                OwnedEntry::value(key, i as u64 + 1, value)
            })
            .collect();
        // Generous scratch pool: each trial table is ≤ ~64 KiB.
        let pool = PmPool::new(4 << 20, *cost);
        for (id, mode) in [
            (pmtable::CODEC_PREFIX, CodecMode::Prefix),
            (pmtable::CODEC_DELTA, CodecMode::Delta),
            (pmtable::CODEC_FIXED, CodecMode::Fixed),
        ] {
            let mut builder = PmTableBuilder::new(PmTableOptions {
                group_size: 16,
                extractor: MetaExtractor::None,
                filter_bits_per_key: 0,
                codec: mode,
            });
            for e in &entries {
                builder.add(e.clone());
            }
            let mut build_tl = Timeline::new();
            let (bytes, _stats) = builder.finish(cost, &mut build_tl);
            let encoded = bytes.len();
            let Ok(region) = pool.publish(bytes, &mut build_tl) else {
                continue; // leave this codec's row zeroed
            };
            let Ok(pm_table) = PmTable::open(region) else {
                continue;
            };
            let groups = pm_table.group_count().max(1) as u64;
            let mut scan_tl = Timeline::new();
            let decoded = pm_table.scan_all(&mut scan_tl);
            debug_assert_eq!(decoded.len(), n);
            // Round up: a codec whose whole-table decode metered under
            // one nano per entry still records 1, so "was calibrated"
            // stays distinguishable from the all-zero default table.
            let nanos = scan_tl.elapsed().as_nanos();
            table.decode_group_nanos[id as usize] = nanos.div_ceil(groups);
            table.decode_entry_nanos[id as usize] = nanos.div_ceil(n as u64);
            table.bytes_per_entry[id as usize] = encoded as f64 / n as f64;
        }
        table
    }

    /// Entries-weighted mean group-decode cost over level-0 tables,
    /// given `(codec, entries)` pairs — the `probe_decode` input of
    /// [`read_benefit_positive_coded`].
    pub fn probe_decode(&self, tables: impl Iterator<Item = (u8, usize)>) -> SimDuration {
        self.weighted(tables, &self.decode_group_nanos)
    }

    /// Entries-weighted mean per-entry decode cost over level-0 tables —
    /// the `decode_per_record` input of [`write_benefit_positive_coded`].
    pub fn decode_per_record(&self, tables: impl Iterator<Item = (u8, usize)>) -> SimDuration {
        self.weighted(tables, &self.decode_entry_nanos)
    }

    fn weighted(
        &self,
        tables: impl Iterator<Item = (u8, usize)>,
        nanos: &[u64; CODEC_COUNT],
    ) -> SimDuration {
        let (mut weighted, mut total) = (0u128, 0u128);
        for (codec, entries) in tables {
            let per = nanos[(codec as usize).min(CODEC_COUNT - 1)] as u128;
            weighted += per * entries as u128;
            total += entries as u128;
        }
        if total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((weighted / total) as u64)
    }
}

/// Pick the flush codec for a batch shaped like `stats`: among the
/// codecs the batch is *eligible* for, minimize
/// `bytes_per_entry × PM-per-byte cost + per-entry decode cost` — PM
/// bandwidth spent writing then reading each entry plus the CPU to
/// decode it back. Ties (including the all-zero default cost table)
/// resolve to the lowest codec id, i.e. the prefix baseline.
pub fn select_codec(stats: &CodecStats, table: &CodecCostTable, cost: &CostModel) -> CodecMode {
    if stats.entries == 0 {
        return CodecMode::Prefix;
    }
    // Eligibility mirrors the per-group encoder gates in `pmtable`: the
    // delta codec needs fixed-width keys whose post-LCP remainder fits a
    // u64 and at least one delta; the fixed codec needs fixed-width
    // values that fit a u64. (Group-level fallback still guards the
    // encoder — this gate just avoids forcing a codec that cannot win.)
    let delta_ok = stats.entries >= 2
        && stats
            .fixed_key_width
            .is_some_and(|w| (1..=8).contains(&w.saturating_sub(stats.batch_lcp)));
    let fixed_ok = stats
        .fixed_value_width
        .is_some_and(|v| (1..=8).contains(&v));
    // Each entry is written to PM once and read back on probes; charge
    // both bandwidth terms so denser codecs win on either side.
    let pm_per_byte =
        (cost.pm.write_per_byte.as_nanos() + cost.pm.read_per_byte.as_nanos()) as f64 / 1024.0;
    let score = |id: u8| {
        table.bytes_per_entry[id as usize] * pm_per_byte
            + table.decode_entry_nanos[id as usize] as f64
    };
    let mut best = (CodecMode::Prefix, score(pmtable::CODEC_PREFIX));
    if delta_ok && score(pmtable::CODEC_DELTA) < best.1 {
        best = (CodecMode::Delta, score(pmtable::CODEC_DELTA));
    }
    if fixed_ok && score(pmtable::CODEC_FIXED) < best.1 {
        best = (CodecMode::Fixed, score(pmtable::CODEC_FIXED));
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimDuration;

    fn scalars() -> CostScalars {
        CostScalars::default()
    }

    fn at(secs: u64) -> SimInstant {
        SimInstant::ORIGIN + SimDuration::from_secs(secs)
    }

    #[test]
    fn read_rate_is_reads_per_second() {
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        c.reads.add(500);
        assert!((c.read_rate(at(10)) - 50.0).abs() < 1e-9);
        // Zero-length window with reads → hot.
        assert!(c.read_rate(SimInstant::ORIGIN).is_infinite());
        c.reads.reset();
        assert_eq!(c.read_rate(SimInstant::ORIGIN), 0.0);
    }

    #[test]
    fn eq1_needs_reads_and_unsorted_tables() {
        let s = scalars();
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        // No reads: never trigger.
        assert!(!read_benefit_positive(&c, 10, at(1), &s));
        // Reads but only one unsorted table: nothing to merge.
        c.reads.add(1_000_000);
        assert!(!read_benefit_positive(&c, 1, at(1), &s));
        // Hot partition with many unsorted tables: trigger.
        assert!(read_benefit_positive(&c, 8, at(1), &s));
    }

    #[test]
    fn eq1_threshold_scales_with_read_rate() {
        let s = scalars();
        // Work rate = I_p/t_p = 0.05. Benefit = rate * n/2 * I_b.
        // With n=4 and I_b=2us: rate must exceed 0.05/(2*2e-6) = 12.5k/s.
        let cold = PartitionCounters::new(SimInstant::ORIGIN);
        cold.reads.add(5_000); // 5k/s over 1s
        assert!(!read_benefit_positive(&cold, 4, at(1), &s));
        let hot = PartitionCounters::new(SimInstant::ORIGIN);
        hot.reads.add(50_000); // 50k/s
        assert!(read_benefit_positive(&hot, 4, at(1), &s));
    }

    #[test]
    fn eq1_filtered_delays_trigger_as_filters_prune() {
        let s = scalars();
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        c.reads.add(50_000); // 50k/s over 1s: triggers unfiltered at n=4
        assert!(read_benefit_positive_filtered(&c, 4, at(1), &s, 0.0));
        // Filters pruning 90% of probes shrink the benefit 10×: below
        // threshold now (12.5k/s needed unfiltered → 125k/s at 0.9).
        assert!(!read_benefit_positive_filtered(&c, 4, at(1), &s, 0.9));
        // Perfect filters: pruned probes cost ~0, never trigger on reads.
        assert!(!read_benefit_positive_filtered(&c, 100, at(1), &s, 1.0));
        // Out-of-range ratios clamp instead of flipping the sign.
        assert!(read_benefit_positive_filtered(&c, 4, at(1), &s, -3.0));
        assert!(!read_benefit_positive_filtered(&c, 4, at(1), &s, 7.0));
        // Delegation: ratio 0 matches the unfiltered form everywhere.
        assert_eq!(
            read_benefit_positive(&c, 4, at(1), &s),
            read_benefit_positive_filtered(&c, 4, at(1), &s, 0.0)
        );
    }

    #[test]
    fn eq2_triggers_on_update_heavy_windows() {
        let s = scalars();
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        // I_s = 5us, I_p = 2us: need removable > l0_records * 2/5.
        c.writes.add(1000);
        c.updates.add(100); // 100 removable vs 1000 L0 records: not worth it
        assert!(!write_benefit_positive(&c, 1000, &s));
        c.updates.add(400); // 500 removable: worth it
        assert!(write_benefit_positive(&c, 1000, &s));
        // A big L0 makes the same update count uneconomical.
        assert!(!write_benefit_positive(&c, 10_000, &s));
        // Empty window or empty L0 never triggers.
        let empty = PartitionCounters::new(SimInstant::ORIGIN);
        assert!(!write_benefit_positive(&empty, 1000, &s));
        assert!(!write_benefit_positive(&c, 0, &s));
    }

    #[test]
    fn knapsack_prefers_dense_partitions() {
        let candidates = vec![
            RetentionCandidate {
                partition: 0,
                reads: 100,
                bytes: 100,
            },
            RetentionCandidate {
                partition: 1,
                reads: 1000,
                bytes: 100,
            },
            RetentionCandidate {
                partition: 2,
                reads: 10,
                bytes: 100,
            },
        ];
        // Budget fits two.
        let kept = select_retained(&candidates, 200);
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn knapsack_respects_budget_exactly() {
        let candidates = vec![
            RetentionCandidate {
                partition: 0,
                reads: 50,
                bytes: 60,
            },
            RetentionCandidate {
                partition: 1,
                reads: 49,
                bytes: 60,
            },
        ];
        // Only one fits.
        assert_eq!(select_retained(&candidates, 100), vec![0]);
        // Zero budget retains nothing.
        assert!(select_retained(&candidates, 0).is_empty());
        // Large budget retains all.
        assert_eq!(select_retained(&candidates, 1000), vec![0, 1]);
    }

    #[test]
    fn knapsack_skips_empty_partitions_and_greedy_fills_gaps() {
        let candidates = vec![
            RetentionCandidate {
                partition: 0,
                reads: 0,
                bytes: 0,
            },
            RetentionCandidate {
                partition: 1,
                reads: 500,
                bytes: 90,
            },
            RetentionCandidate {
                partition: 2,
                reads: 100,
                bytes: 10,
            },
        ];
        // Density: p2 (10/byte) > p1 (5.5/byte). Both fit in 100.
        assert_eq!(select_retained(&candidates, 100), vec![1, 2]);
        // Budget 50: p2 first (dense), p1 no longer fits.
        assert_eq!(select_retained(&candidates, 50), vec![2]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_knapsack_respects_budget_and_is_nonempty_when_possible(
            sizes in proptest::collection::vec(1usize..10_000, 1..20),
            reads in proptest::collection::vec(0u64..100_000, 1..20),
            budget in 0usize..50_000,
        ) {
            let n = sizes.len().min(reads.len());
            let candidates: Vec<RetentionCandidate> = (0..n)
                .map(|i| RetentionCandidate {
                    partition: i,
                    reads: reads[i],
                    bytes: sizes[i],
                })
                .collect();
            let kept = select_retained(&candidates, budget);
            // Budget respected.
            let total: usize = kept
                .iter()
                .map(|&p| candidates[p].bytes)
                .sum();
            proptest::prop_assert!(total <= budget);
            // Ids valid and unique.
            let mut ids = kept.clone();
            ids.dedup();
            proptest::prop_assert_eq!(ids.len(), kept.len());
            proptest::prop_assert!(kept.iter().all(|&p| p < n));
            // If anything fits, the greedy picks something.
            if candidates.iter().any(|c| c.bytes > 0 && c.bytes <= budget) {
                proptest::prop_assert!(!kept.is_empty());
            }
        }
    }

    #[test]
    fn counters_reset_clears_window() {
        let mut c = PartitionCounters::new(SimInstant::ORIGIN);
        c.reads.add(10);
        c.writes.add(20);
        c.updates.add(5);
        c.reset(at(3));
        assert_eq!(c.reads.get(), 0);
        assert_eq!(c.writes.get(), 0);
        assert_eq!(c.updates.get(), 0);
        assert_eq!(c.window_start, at(3));
    }

    #[test]
    fn calibration_is_deterministic_and_ranks_numeric_codecs_denser() {
        let cost = CostModel::default();
        let a = CodecCostTable::calibrate(&cost);
        let b = CodecCostTable::calibrate(&cost);
        assert_eq!(a, b, "calibration must be virtual-clock deterministic");
        // On the timeseries shape both numeric codecs beat prefix groups.
        let bpe = a.bytes_per_entry;
        assert!(bpe[pmtable::CODEC_PREFIX as usize] > 0.0);
        assert!(bpe[pmtable::CODEC_DELTA as usize] < bpe[pmtable::CODEC_PREFIX as usize]);
        assert!(bpe[pmtable::CODEC_FIXED as usize] < bpe[pmtable::CODEC_PREFIX as usize]);
        // Every codec's decode was actually metered.
        for id in 0..pmtable::CODEC_COUNT {
            assert!(a.decode_group_nanos[id] > 0, "codec {id} group nanos");
            assert!(a.decode_entry_nanos[id] > 0, "codec {id} entry nanos");
        }
    }

    #[test]
    fn select_codec_is_prefix_on_zero_table_and_numeric_on_calibrated() {
        use encoding::delta::CodecStats;
        let cost = CostModel::default();
        let owned: Vec<Vec<u8>> = (0u64..256)
            .map(|i| (1_000_000 + 3 * i).to_be_bytes().to_vec())
            .collect();
        let keys: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let lens = vec![8usize; keys.len()];
        let stats = CodecStats::analyze(&keys, &lens);
        // Zero cost table: all scores tie, lowest id (prefix) wins —
        // the pre-calibration/pre-codec behavior.
        assert_eq!(
            select_codec(&stats, &CodecCostTable::default(), &cost),
            CodecMode::Prefix
        );
        // Calibrated: a numeric codec must win on the timeseries shape.
        let table = CodecCostTable::calibrate(&cost);
        let chosen = select_codec(&stats, &table, &cost);
        assert!(
            matches!(chosen, CodecMode::Delta | CodecMode::Fixed),
            "timeseries batch must pick a numeric codec, got {chosen:?}"
        );
        // Ineligible shapes fall back to prefix even when calibrated.
        let ragged: Vec<&[u8]> = vec![b"a", b"long-key", b"mid"];
        let ragged_stats = CodecStats::analyze(&ragged, &[3, 9, 100]);
        assert_eq!(
            select_codec(&ragged_stats, &table, &cost),
            CodecMode::Prefix
        );
        let empty = CodecStats::analyze(&[], &[]);
        assert_eq!(select_codec(&empty, &table, &cost), CodecMode::Prefix);
    }

    #[test]
    fn eq1_coded_probe_decode_raises_the_benefit_side() {
        let s = scalars();
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        c.reads.add(10_000); // 10k/s: below the 12.5k/s unfiltered bar at n=4
        assert!(!read_benefit_positive_filtered(&c, 4, at(1), &s, 0.0));
        // Pricier probes (binary search + group decode) make the same
        // merge worth more: decode cost pushes it over the line.
        let decode = SimDuration::from_micros(2);
        assert!(read_benefit_positive_coded(&c, 4, at(1), &s, 0.0, decode));
        // Zero decode is exactly the filtered form.
        assert_eq!(
            read_benefit_positive_coded(&c, 4, at(1), &s, 0.0, SimDuration::ZERO),
            read_benefit_positive_filtered(&c, 4, at(1), &s, 0.0)
        );
    }

    #[test]
    fn eq2_coded_decode_cost_delays_the_trigger() {
        let s = scalars();
        let c = PartitionCounters::new(SimInstant::ORIGIN);
        c.writes.add(1000);
        c.updates.add(500); // removable 500 * 5us = 2.5ms saved
        assert!(write_benefit_positive(&c, 1000, &s)); // spent 2ms
                                                       // Decoding each record adds 1us: spent 3ms > saved, not worth it.
        let decode = SimDuration::from_micros(1);
        assert!(!write_benefit_positive_coded(&c, 1000, &s, decode));
        assert_eq!(
            write_benefit_positive_coded(&c, 1000, &s, SimDuration::ZERO),
            write_benefit_positive(&c, 1000, &s)
        );
    }

    #[test]
    fn decode_weighting_is_entries_weighted() {
        let table = CodecCostTable {
            decode_group_nanos: [100, 300, 500],
            decode_entry_nanos: [10, 30, 50],
            bytes_per_entry: [0.0; 3],
        };
        assert_eq!(
            table.probe_decode(std::iter::empty()),
            SimDuration::ZERO,
            "empty level-0 decodes nothing"
        );
        // 3:1 entry split between codecs 0 and 1: (3*100 + 1*300) / 4.
        let mix = [(0u8, 300usize), (1u8, 100usize)];
        assert_eq!(
            table.probe_decode(mix.iter().copied()),
            SimDuration::from_nanos(150)
        );
        assert_eq!(
            table.decode_per_record(mix.iter().copied()),
            SimDuration::from_nanos(15)
        );
    }
}
