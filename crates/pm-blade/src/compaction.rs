//! Bridging real compaction work to the coroutine scheduler.
//!
//! The engine executes compaction data movement synchronously on the
//! virtual clock (every device byte is metered). To reproduce the §V
//! experiments — where the *parallel wall-clock* duration and resource
//! utilization of a major compaction depend on the scheduling policy —
//! this module converts a compaction's measured work into
//! [`coroutine::CompactionTask`] traces and runs them under the
//! configured policy.

use coroutine::{CompactionTask, Policy, RunReport, Scheduler, SchedulerConfig, TraceParams};
use sim::{Pcg64, SimDuration};

/// Measured inputs of one major compaction.
#[derive(Clone, Copy, Debug)]
pub struct CompactionWork {
    /// Bytes read from the inputs (PM level-0 + overlapping level-1).
    pub input_bytes: u64,
    /// Surviving output bytes written to the SSD.
    pub output_bytes: u64,
    /// Records merged.
    pub records: u64,
    /// Mean value size of the workload (sets the CPU/I-O balance).
    pub value_size: u32,
}

impl CompactionWork {
    /// Fraction of input discarded as duplicates.
    pub fn dup_ratio(&self) -> f64 {
        if self.input_bytes == 0 {
            return 0.0;
        }
        (1.0 - self.output_bytes as f64 / self.input_bytes as f64).clamp(0.0, 0.95)
    }
}

/// Report of a scheduled major compaction.
#[derive(Clone, Debug)]
pub struct MajorReport {
    /// Parallel (scheduled) wall-clock duration.
    pub scheduled: RunReport,
    /// Synchronous device time the data movement itself charged.
    pub device_time: SimDuration,
}

/// The paper's compaction splitter: `k = max(⌊q/c⌋, 1)` chunks per
/// compaction (§V-C), where `q` is the device I/O window and `c` the
/// worker cores. The same `k` splits synthesized traces in
/// [`schedule_major`] and *real* background major compactions in
/// [`crate::maintenance`] — a worker moves the level-0 in `k` installs,
/// yielding the partition lock (and the CPU) between chunks so
/// foreground reads and flush jobs interleave.
pub fn chunk_count(cfg: &SchedulerConfig) -> usize {
    ((cfg.max_io as usize) / cfg.cores.max(1)).max(1)
}

/// §V admission for flush work: `q_flush = max(q − q_comp − q_cli, 0)`.
/// `q_cli` is clamped below `q` so a drained system always admits at
/// least one flush — otherwise a configuration with `client_io ≥ max_io`
/// would starve flushes forever and deadlock the stall path.
pub fn flush_admission(cfg: &SchedulerConfig, running_compactions: u64) -> u64 {
    let q_cli = cfg.client_io.min(cfg.max_io.saturating_sub(1));
    cfg.max_io.saturating_sub(running_compactions + q_cli)
}

/// Derive per-task traces for this compaction and run them under `cfg`.
///
/// The compaction splitter assigns `c` worker threads and
/// `k = max(⌊q/c⌋, 1)` coroutines each (§V-C), so the subtask count is
/// `c·k` for the coroutine policies and `c` (one thread per core's task)
/// under plain threads — mirroring how the paper parallelizes.
pub fn schedule_major(work: &CompactionWork, cfg: SchedulerConfig, seed: u64) -> RunReport {
    let k = chunk_count(&cfg);
    let subtasks = match cfg.policy {
        Policy::OsThreads => cfg.cores.max(1) * k, // same total parallelism
        _ => cfg.cores.max(1) * k,
    };
    let params = TraceParams {
        input_bytes: work.input_bytes.max(1),
        value_size: work.value_size,
        dup_ratio: work.dup_ratio(),
        ..TraceParams::default()
    };
    let tasks = split_tasks(&params, subtasks, seed);
    Scheduler::new(cfg).run(&tasks)
}

fn split_tasks(params: &TraceParams, n: usize, seed: u64) -> Vec<CompactionTask> {
    let mut rng = Pcg64::seeded(seed);
    let share = TraceParams {
        input_bytes: (params.input_bytes / n as u64).max(1),
        ..*params
    };
    (0..n)
        .map(|_| coroutine::trace::synthesize(&share, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work() -> CompactionWork {
        CompactionWork {
            input_bytes: 4 << 20,
            output_bytes: 3 << 20,
            records: 4096,
            value_size: 1024,
        }
    }

    #[test]
    fn chunk_count_matches_the_splitter() {
        let cfg = |cores, max_io| SchedulerConfig {
            cores,
            max_io,
            ..SchedulerConfig::default()
        };
        assert_eq!(chunk_count(&cfg(2, 4)), 2);
        assert_eq!(chunk_count(&cfg(4, 4)), 1);
        assert_eq!(chunk_count(&cfg(1, 8)), 8);
        // Degenerate configs still produce at least one chunk.
        assert_eq!(chunk_count(&cfg(8, 1)), 1);
    }

    #[test]
    fn flush_admission_ports_the_equation() {
        let cfg = |max_io, client_io| SchedulerConfig {
            max_io,
            client_io,
            ..SchedulerConfig::default()
        };
        // q_flush = max(q − q_comp − q_cli, 0)
        assert_eq!(flush_admission(&cfg(4, 0), 0), 4);
        assert_eq!(flush_admission(&cfg(4, 1), 2), 1);
        assert_eq!(flush_admission(&cfg(4, 1), 3), 0);
        // q_cli is clamped so an idle system always admits a flush.
        assert_eq!(flush_admission(&cfg(4, 9), 0), 1);
        assert_eq!(flush_admission(&cfg(1, 1), 0), 1);
    }

    #[test]
    fn dup_ratio_reflects_shrinkage() {
        let w = work();
        assert!((w.dup_ratio() - 0.25).abs() < 1e-9);
        let none = CompactionWork {
            output_bytes: 4 << 20,
            ..w
        };
        assert_eq!(none.dup_ratio(), 0.0);
        let empty = CompactionWork {
            input_bytes: 0,
            ..w
        };
        assert_eq!(empty.dup_ratio(), 0.0);
        let expand = CompactionWork {
            output_bytes: 8 << 20,
            ..w
        };
        assert_eq!(expand.dup_ratio(), 0.0, "growth clamps at zero");
    }

    #[test]
    fn schedule_runs_under_all_policies() {
        let w = work();
        for policy in [Policy::OsThreads, Policy::NaiveCoroutine, Policy::PmBlade] {
            let cfg = SchedulerConfig {
                policy,
                ..SchedulerConfig::default()
            };
            let report = schedule_major(&w, cfg, 11);
            assert!(report.duration > SimDuration::ZERO, "{policy:?}");
            assert!(report.io_requests > 0);
        }
    }

    #[test]
    fn pmblade_policy_fastest_on_real_shape() {
        let w = work();
        let run = |policy| {
            schedule_major(
                &w,
                SchedulerConfig {
                    policy,
                    ..SchedulerConfig::default()
                },
                13,
            )
        };
        let thread = run(Policy::OsThreads);
        let pmblade = run(Policy::PmBlade);
        assert!(pmblade.duration <= thread.duration);
    }
}
