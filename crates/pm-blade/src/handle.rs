//! Table handles and merge utilities shared by the compaction paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use encoding::delta::CodecStats;
use encoding::key::SequenceNumber;
use pm_device::{PmPool, PmRegion, RegionId};
use pmtable::{CodecMode, L0Table, OwnedEntry, PmTable, PmTableBuilder, PmTableOptions};
use sim::Timeline;
use sstable::SsTable;

use crate::costmodel::{select_codec, CodecCostTable};

/// Per-engine allocator for [`PmTableHandle::cache_id`]. Ids are
/// monotonic and never reused within an engine, so a retired table's
/// cached groups can never alias a newer table's (the group-decode
/// cache the ids key is itself per-engine and starts empty on open).
/// Deliberately *not* process-global: the cache shards by id hash, so
/// two engines running the same workload must mint the same ids to
/// place and evict groups identically — the determinism every
/// virtual-time benchmark and parity test relies on.
pub struct CacheIds(AtomicU64);

impl CacheIds {
    pub fn new() -> Self {
        Self(AtomicU64::new(1))
    }

    /// Mint the next table cache id.
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for CacheIds {
    fn default() -> Self {
        Self::new()
    }
}

/// A PM table resident in level-0.
#[derive(Clone)]
pub struct PmTableHandle {
    pub table: Arc<PmTable<PmRegion>>,
    pub region: RegionId,
    pub first: Vec<u8>,
    pub last: Vec<u8>,
    pub entries: usize,
    pub bytes: usize,
    /// Largest sequence stored; newer tables shadow older ones.
    pub max_seq: SequenceNumber,
    /// Unique key for the shared group-decode cache
    /// ([`crate::groupcache::PmGroupCache`]).
    pub cache_id: u64,
    /// Dominant group codec id (`pmtable::CODEC_*`): the codec most of
    /// this table's groups encode with. Feeds the Eq 1/Eq 2 decode
    /// terms and the manifest's per-table codec record.
    pub codec: u8,
}

impl PmTableHandle {
    /// Could this table contain `key`?
    pub fn overlaps_key(&self, key: &[u8]) -> bool {
        self.first.as_slice() <= key && key <= self.last.as_slice()
    }

    /// Does this table's range intersect `[start, end)`?
    pub fn overlaps_range(&self, start: &[u8], end: Option<&[u8]>) -> bool {
        let after_start = self.last.as_slice() >= start;
        let before_end = end.is_none_or(|e| self.first.as_slice() < e);
        after_start && before_end
    }
}

impl std::fmt::Debug for PmTableHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmTableHandle")
            .field("region", &self.region)
            .field("entries", &self.entries)
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// An SSTable resident in an SSD level.
#[derive(Clone)]
pub struct SsTableHandle {
    pub table: Arc<SsTable>,
    pub name: String,
    pub first: Vec<u8>,
    pub last: Vec<u8>,
    pub bytes: u64,
    pub max_seq: SequenceNumber,
}

impl SsTableHandle {
    pub fn overlaps_key(&self, key: &[u8]) -> bool {
        self.first.as_slice() <= key && key <= self.last.as_slice()
    }

    pub fn overlaps_range(&self, start: &[u8], end: Option<&[u8]>) -> bool {
        let after_start = self.last.as_slice() >= start;
        let before_end = end.is_none_or(|e| self.first.as_slice() < e);
        after_start && before_end
    }

    pub fn overlaps_handle_range(&self, first: &[u8], last: &[u8]) -> bool {
        self.first.as_slice() <= last && first <= self.last.as_slice()
    }
}

impl std::fmt::Debug for SsTableHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsTableHandle")
            .field("name", &self.name)
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// Merge N entry streams (each internally sorted by internal key) into
/// one deduplicated stream: newest version per user key survives;
/// tombstones survive unless `drop_tombstones`.
///
/// `sources` must be ordered so that ties cannot occur (sequences are
/// globally unique). Charges merge CPU per input record to `tl`.
pub fn merge_dedup(
    mut sources: Vec<Vec<OwnedEntry>>,
    drop_tombstones: bool,
    cost: &sim::CostModel,
    tl: &mut Timeline,
) -> Vec<OwnedEntry> {
    let total: usize = sources.iter().map(|s| s.len()).sum();
    tl.charge(sim::SimDuration::from_nanos(
        cost.cpu.merge_per_entry.as_nanos() * total as u64,
    ));
    let mut merged: Vec<OwnedEntry> = Vec::with_capacity(total);
    for source in &mut sources {
        merged.append(source);
    }
    merged.sort_by(|a, b| a.internal_cmp(b));
    let mut out: Vec<OwnedEntry> = Vec::with_capacity(merged.len());
    // Track the last user key *seen* (not pushed): a dropped tombstone
    // must still shadow the older versions behind it.
    let mut last_seen: Option<Vec<u8>> = None;
    for entry in merged {
        if last_seen.as_deref() == Some(entry.user_key.as_slice()) {
            continue; // older version of the same key
        }
        last_seen = Some(entry.user_key.clone());
        if drop_tombstones && entry.kind == encoding::key::KeyKind::Delete {
            continue;
        }
        out.push(entry);
    }
    out
}

/// Rebuild a PM-table handle from a recovered region (manifest replay).
/// The region payload is self-describing; `first`/`last`/`max_seq` are
/// re-derived from it. A fresh `cache_id` is minted — the group-decode
/// cache starts empty after a restart, so no aliasing is possible.
pub fn reopen_pm_table(region: PmRegion, ids: &CacheIds) -> Result<PmTableHandle, String> {
    let region_id = region.id();
    let bytes = region.len();
    let table = PmTable::open(region).map_err(|e| format!("region {region_id}: {e}"))?;
    let first = table
        .first_user_key()
        .ok_or_else(|| format!("region {region_id}: empty table"))?
        .to_vec();
    let last = table
        .last_user_key()
        .ok_or_else(|| format!("region {region_id}: empty table"))?
        .to_vec();
    let entries = table.entry_count();
    let max_seq = table
        .scan_all(&mut Timeline::new())
        .iter()
        .map(|e| e.seq)
        .max()
        .unwrap_or(0);
    let codec = table.dominant_codec();
    Ok(PmTableHandle {
        table: Arc::new(table),
        region: region_id,
        first,
        last,
        entries,
        bytes,
        max_seq,
        cache_id: ids.next(),
        codec,
    })
}

/// Build PM tables (splitting at `max_bytes`) from sorted entries and
/// publish them to the pool. Returns the new handles.
///
/// [`CodecMode::Auto`] in `opts.codec` is resolved *here*, once for the
/// whole flush batch: [`CodecStats::analyze`] inspects the batch's key
/// shape and [`select_codec`] charges each eligible codec's measured
/// density and decode cost from `codec_costs`. The winning mode is then
/// forced for every output table (individual groups still fall back to
/// prefix encoding inside the builder when the codec cannot represent
/// them or would grow them).
#[allow(clippy::too_many_arguments)]
pub fn build_pm_tables(
    entries: &[OwnedEntry],
    mut opts: PmTableOptions,
    codec_costs: &CodecCostTable,
    max_bytes: usize,
    pool: &PmPool,
    ids: &CacheIds,
    cost: &sim::CostModel,
    tl: &mut Timeline,
) -> Result<Vec<PmTableHandle>, pm_device::PmError> {
    if opts.codec == CodecMode::Auto {
        let keys: Vec<&[u8]> = entries.iter().map(|e| e.user_key.as_slice()).collect();
        let value_lens: Vec<usize> = entries.iter().map(|e| e.value.len()).collect();
        let stats = CodecStats::analyze(&keys, &value_lens);
        opts.codec = select_codec(&stats, codec_costs, cost);
    }
    let mut out = Vec::new();
    let mut builder = PmTableBuilder::new(opts);
    let mut first: Option<Vec<u8>> = None;
    let flush = |builder: &mut PmTableBuilder,
                 first: &mut Option<Vec<u8>>,
                 last: &[u8],
                 tl: &mut Timeline|
     -> Result<Option<PmTableHandle>, pm_device::PmError> {
        if builder.entry_count() == 0 {
            return Ok(None);
        }
        let done = std::mem::replace(builder, PmTableBuilder::new(opts));
        let entries = done.entry_count();
        let (bytes, _stats) = done.finish(cost, tl);
        let len = bytes.len();
        let region = pool.publish(bytes, tl)?;
        let region_id = region.id();
        let table = PmTable::open(region).expect("just-built table parses");
        let max_seq = table
            .scan_all(&mut Timeline::new())
            .iter()
            .map(|e| e.seq)
            .max()
            .unwrap_or(0);
        let codec = table.dominant_codec();
        Ok(Some(PmTableHandle {
            first: first.take().expect("non-empty builder has first"),
            last: last.to_vec(),
            table: Arc::new(table),
            region: region_id,
            entries,
            bytes: len,
            max_seq,
            cache_id: ids.next(),
            codec,
        }))
    };
    let mut last_key: Vec<u8> = Vec::new();
    let mut pending_bytes = 0usize;
    for entry in entries {
        if first.is_none() {
            first = Some(entry.user_key.clone());
        }
        pending_bytes += entry.raw_len();
        last_key = entry.user_key.clone();
        builder.add(entry.clone());
        if pending_bytes >= max_bytes {
            if let Some(h) = flush(&mut builder, &mut first, &last_key, tl)? {
                out.push(h);
            }
            pending_bytes = 0;
        }
    }
    if let Some(h) = flush(&mut builder, &mut first, &last_key, tl)? {
        out.push(h);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use encoding::key::KeyKind;
    use sim::CostModel;

    fn e(k: &str, seq: u64, v: &str) -> OwnedEntry {
        OwnedEntry::value(k.as_bytes().to_vec(), seq, v.as_bytes().to_vec())
    }

    fn tomb(k: &str, seq: u64) -> OwnedEntry {
        OwnedEntry::tombstone(k.as_bytes().to_vec(), seq)
    }

    #[test]
    fn merge_keeps_newest_version() {
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        let a = vec![e("a", 5, "old"), e("b", 2, "bee")];
        let b = vec![e("a", 9, "new")];
        let merged = merge_dedup(vec![a, b], false, &cost, &mut tl);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].value, b"new");
        assert_eq!(merged[0].seq, 9);
        assert_eq!(merged[1].user_key, b"b");
        assert!(tl.elapsed() > sim::SimDuration::ZERO);
    }

    #[test]
    fn merge_tombstone_shadows_then_optionally_drops() {
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        let src = vec![vec![e("k", 3, "v")], vec![tomb("k", 8)]];
        let kept = merge_dedup(src.clone(), false, &cost, &mut tl);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].kind, KeyKind::Delete);
        let dropped = merge_dedup(src, true, &cost, &mut tl);
        assert!(dropped.is_empty(), "bottom-level merge erases the key");
    }

    #[test]
    fn merge_result_is_sorted_unique() {
        let cost = CostModel::default();
        let mut tl = Timeline::new();
        let a: Vec<OwnedEntry> = (0..50)
            .map(|i| e(&format!("k{:03}", i * 2), i + 1, "a"))
            .collect();
        let b: Vec<OwnedEntry> = (0..50)
            .map(|i| e(&format!("k{:03}", i * 2 + 1), 100 + i, "b"))
            .collect();
        let merged = merge_dedup(vec![a, b], false, &cost, &mut tl);
        assert_eq!(merged.len(), 100);
        for w in merged.windows(2) {
            assert!(w[0].user_key < w[1].user_key);
        }
    }

    #[test]
    fn build_pm_tables_splits_at_max_bytes() {
        let cost = CostModel::default();
        let pool = PmPool::new(16 << 20, cost);
        let mut tl = Timeline::new();
        let entries: Vec<OwnedEntry> = (0..400)
            .map(|i| e(&format!("key{:05}", i), i + 1, &"v".repeat(100)))
            .collect();
        let handles = build_pm_tables(
            &entries,
            PmTableOptions::default(),
            &CodecCostTable::default(),
            8 << 10,
            &pool,
            &CacheIds::new(),
            &cost,
            &mut tl,
        )
        .unwrap();
        assert!(handles.len() > 1, "400x~110B must split at 8KiB");
        // Ranges are contiguous and ordered.
        for pair in handles.windows(2) {
            assert!(pair[0].last < pair[1].first);
        }
        let total: usize = handles.iter().map(|h| h.entries).sum();
        assert_eq!(total, 400);
        // Every handle's range brackets its content.
        for h in &handles {
            assert!(h.overlaps_key(&h.first));
            assert!(h.overlaps_key(&h.last));
            assert!(h.bytes > 0);
        }
    }

    #[test]
    fn empty_input_builds_nothing() {
        let cost = CostModel::default();
        let pool = PmPool::new(1 << 20, cost);
        let mut tl = Timeline::new();
        let handles = build_pm_tables(
            &[],
            PmTableOptions::default(),
            &CodecCostTable::default(),
            1 << 10,
            &pool,
            &CacheIds::new(),
            &cost,
            &mut tl,
        )
        .unwrap();
        assert!(handles.is_empty());
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn auto_codec_resolves_per_flush_batch() {
        let cost = CostModel::default();
        let pool = PmPool::new(16 << 20, cost);
        let costs = crate::costmodel::CodecCostTable::calibrate(&cost);
        let ids = CacheIds::new();
        let auto_opts = PmTableOptions {
            codec: CodecMode::Auto,
            ..PmTableOptions::default()
        };
        // Timeseries batch: fixed 8B keys + values, must pick a numeric
        // codec and come out smaller than the forced-prefix build.
        let ts: Vec<OwnedEntry> = (0..512u64)
            .map(|i| {
                OwnedEntry::value(
                    (1_700_000_000 + 3 * i).to_be_bytes().to_vec(),
                    i + 1,
                    (40_000 + 3 * i).to_be_bytes().to_vec(),
                )
            })
            .collect();
        let mut tl = Timeline::new();
        let coded = build_pm_tables(
            &ts,
            auto_opts,
            &costs,
            usize::MAX,
            &pool,
            &ids,
            &cost,
            &mut tl,
        )
        .unwrap();
        assert_eq!(coded.len(), 1);
        assert_ne!(coded[0].codec, pmtable::CODEC_PREFIX);
        let prefix_opts = PmTableOptions::default();
        let plain = build_pm_tables(
            &ts,
            prefix_opts,
            &costs,
            usize::MAX,
            &pool,
            &ids,
            &cost,
            &mut tl,
        )
        .unwrap();
        assert_eq!(plain[0].codec, pmtable::CODEC_PREFIX);
        assert!(coded[0].bytes < plain[0].bytes);
        // Ragged text batch (variable key and value widths): neither
        // numeric codec is eligible, Auto falls back to the prefix
        // baseline.
        let text: Vec<OwnedEntry> = (0..64)
            .map(|i| {
                e(
                    &format!("k{i:03}x{}", "p".repeat(i % 7)),
                    i as u64 + 1,
                    &"v".repeat(1 + i % 5),
                )
            })
            .collect();
        let mut sorted = text.clone();
        sorted.sort_by(|a, b| a.internal_cmp(b));
        let t = build_pm_tables(
            &sorted,
            auto_opts,
            &costs,
            usize::MAX,
            &pool,
            &ids,
            &cost,
            &mut tl,
        )
        .unwrap();
        assert_eq!(t[0].codec, pmtable::CODEC_PREFIX);
        // Reopen preserves the dominant codec (regions self-describe).
        let region = pool.get(coded[0].region).unwrap();
        let reopened = reopen_pm_table(region, &ids).unwrap();
        assert_eq!(reopened.codec, coded[0].codec);
    }

    #[test]
    fn overlap_predicates() {
        let cost = CostModel::default();
        let pool = PmPool::new(1 << 20, cost);
        let mut tl = Timeline::new();
        let entries = vec![e("m", 1, "x"), e("p", 2, "y")];
        let handles = build_pm_tables(
            &entries,
            PmTableOptions::default(),
            &CodecCostTable::default(),
            1 << 20,
            &pool,
            &CacheIds::new(),
            &cost,
            &mut tl,
        )
        .unwrap();
        let h = &handles[0];
        assert!(h.overlaps_key(b"m"));
        assert!(h.overlaps_key(b"n"));
        assert!(!h.overlaps_key(b"a"));
        assert!(!h.overlaps_key(b"q"));
        assert!(h.overlaps_range(b"a", Some(b"n")));
        assert!(h.overlaps_range(b"p", None));
        assert!(!h.overlaps_range(b"q", None));
        assert!(!h.overlaps_range(b"a", Some(b"m")));
    }
}
