//! Shared LRU cache of decoded PM-table prefix groups.
//!
//! The PM level-0 analogue of the SSD block cache
//! ([`sstable::BlockCache`]): a hit serves a group's entries from DRAM
//! and skips both the PM block read and the prefix reconstruction in
//! [`pmtable::PmTable`]. One cache is shared by every partition and
//! charged against its own byte budget
//! ([`crate::options::Options::pm_group_cache_bytes`]).
//!
//! Keys are `(table cache-id, group index)`. Cache ids are allocated
//! from a process-global monotonic counter when a table handle is
//! built and never reused, so a retired table's entries can never be
//! served to a later table — they are also purged eagerly
//! ([`PmGroupCache::purge_table`]) when compaction frees the table.
//!
//! The structure is sharded by key hash. Lookups take only the shard's
//! *read* lock (recency is an atomic stamp store, not a map mutation),
//! so concurrent readers on different keys — or even the same hot key —
//! never serialize; inserts and evictions take the shard's write lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use pmtable::{GroupAccess, OwnedEntry};
use sim::Counter;

/// Number of independently locked shards.
const SHARDS: usize = 16;

/// Cache key: table cache-id plus group index within the table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct GroupKey {
    table: u64,
    group: u32,
}

struct CacheEntry {
    entries: Arc<Vec<OwnedEntry>>,
    bytes: usize,
    /// Monotonic recency stamp, updated through `&self` on every hit.
    stamp: AtomicU64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<GroupKey, CacheEntry>,
    used: usize,
}

/// A capacity-bounded, sharded LRU cache of decoded groups.
pub struct PmGroupCache {
    /// Per-shard byte budget (total capacity / shard count).
    shard_capacity: usize,
    capacity: usize,
    shards: Vec<RwLock<Shard>>,
    clock: AtomicU64,
    used: AtomicUsize,
    /// Lookups served from the cache.
    pub hits: Arc<Counter>,
    /// Lookups that fell through to a PM group decode.
    pub misses: Arc<Counter>,
    /// Entries evicted to make room.
    pub evictions: Arc<Counter>,
    /// Entries dropped because their table was retired by compaction.
    pub invalidations: Arc<Counter>,
}

impl PmGroupCache {
    /// A cache holding at most `capacity` bytes of decoded entries.
    pub fn new(capacity: usize) -> Self {
        PmGroupCache {
            shard_capacity: capacity / SHARDS,
            capacity,
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
            used: AtomicUsize::new(0),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
            invalidations: Arc::new(Counter::new()),
        }
    }

    /// A cache that stores nothing (every lookup misses).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes of decoded entries currently held.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, key: &GroupKey) -> &RwLock<Shard> {
        // Mix table and group so one table's groups spread over shards.
        let h = key
            .table
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(key.group as u64);
        &self.shards[(h >> 56) as usize % SHARDS]
    }

    fn get(&self, key: GroupKey) -> Option<Arc<Vec<OwnedEntry>>> {
        if self.capacity == 0 {
            // Disabled cache: stay silent (no phantom miss counts).
            return None;
        }
        let shard = self.shard_for(&key).read();
        match shard.map.get(&key) {
            Some(entry) => {
                // Recency is an atomic store under the read lock: hits
                // never contend on the shard's write lock.
                let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                entry.stamp.store(stamp, Ordering::Relaxed);
                self.hits.incr();
                Some(Arc::clone(&entry.entries))
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    fn insert(&self, key: GroupKey, entries: Arc<Vec<OwnedEntry>>) {
        let bytes = entry_bytes(&entries);
        if bytes > self.shard_capacity {
            return; // larger than a whole shard: never cacheable
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard_for(&key).write();
        if let Some(old) = shard.map.remove(&key) {
            shard.used -= old.bytes;
            self.used.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        while shard.used + bytes > self.shard_capacity {
            // Evict the shard's stalest entry. O(n) scan is fine:
            // eviction is rare relative to hits and each shard's map
            // stays modest at our scales.
            let Some((&victim, _)) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
            else {
                break;
            };
            let removed = shard.map.remove(&victim).expect("victim present");
            shard.used -= removed.bytes;
            self.used.fetch_sub(removed.bytes, Ordering::Relaxed);
            self.evictions.incr();
        }
        shard.used += bytes;
        self.used.fetch_add(bytes, Ordering::Relaxed);
        shard.map.insert(
            key,
            CacheEntry {
                entries,
                bytes,
                stamp: AtomicU64::new(stamp),
            },
        );
    }

    /// Drop every cached group of a table (called when compaction
    /// retires the table and frees its PM region).
    pub fn purge_table(&self, table: u64) {
        for lock in &self.shards {
            let mut shard = lock.write();
            let before = shard.map.len();
            let mut freed = 0usize;
            shard.map.retain(|k, e| {
                if k.table == table {
                    freed += e.bytes;
                    false
                } else {
                    true
                }
            });
            shard.used -= freed;
            self.used.fetch_sub(freed, Ordering::Relaxed);
            self.invalidations.add((before - shard.map.len()) as u64);
        }
    }

    /// Observed hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.get();
        let m = self.misses.get();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// A [`GroupAccess`] view scoped to one table, for threading into
    /// [`pmtable::PmTable::get_with_cache`].
    pub fn for_table(&self, table: u64) -> TableGroupCache<'_> {
        TableGroupCache { cache: self, table }
    }
}

/// DRAM charge for one cached group: what the *decoded* entries occupy
/// in memory — each [`OwnedEntry`]'s struct (two Vec headers plus the
/// seq/kind words) and its heap-allocated key and value bytes, plus the
/// group's own `Arc<Vec>` bookkeeping. Deliberately not the encoded PM
/// payload size (`raw_len`): a delta/fixed-coded group can be several
/// times smaller on PM than its decoded form, and charging the encoded
/// size would let the cache silently overshoot its DRAM budget by that
/// ratio.
fn entry_bytes(entries: &[OwnedEntry]) -> usize {
    64 + entries
        .iter()
        .map(|e| e.user_key.len() + e.value.len() + std::mem::size_of::<OwnedEntry>())
        .sum::<usize>()
}

/// The per-table [`GroupAccess`] adapter returned by
/// [`PmGroupCache::for_table`].
pub struct TableGroupCache<'a> {
    cache: &'a PmGroupCache,
    table: u64,
}

impl GroupAccess for TableGroupCache<'_> {
    fn lookup(&self, group: u32) -> Option<Arc<Vec<OwnedEntry>>> {
        self.cache.get(GroupKey {
            table: self.table,
            group,
        })
    }

    fn store(&self, group: u32, entries: Arc<Vec<OwnedEntry>>) {
        if self.cache.capacity == 0 {
            return;
        }
        self.cache.insert(
            GroupKey {
                table: self.table,
                group,
            },
            entries,
        );
    }
}

/// A [`GroupAccess`] adapter that counts cache outcomes for one probe
/// so the request tracer can attribute a PM table probe to the decode
/// cache (all lookups hit) or to a PM group decode (any lookup
/// missed). Delegates to a [`TableGroupCache`]; the cache's own global
/// hit/miss counters are unaffected by the wrapping.
pub struct ObservedGroupAccess<'a> {
    inner: TableGroupCache<'a>,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

impl<'a> ObservedGroupAccess<'a> {
    pub fn new(inner: TableGroupCache<'a>) -> Self {
        ObservedGroupAccess {
            inner,
            hits: std::cell::Cell::new(0),
            misses: std::cell::Cell::new(0),
        }
    }

    /// Group lookups this probe served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Group lookups this probe decoded from PM (including lookups
    /// against a disabled cache, which always decode).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

impl GroupAccess for ObservedGroupAccess<'_> {
    fn lookup(&self, group: u32) -> Option<Arc<Vec<OwnedEntry>>> {
        let found = self.inner.lookup(group);
        if found.is_some() {
            self.hits.set(self.hits.get() + 1);
        } else {
            self.misses.set(self.misses.get() + 1);
        }
        found
    }

    fn store(&self, group: u32, entries: Arc<Vec<OwnedEntry>>) {
        self.inner.store(group, entries);
    }
}

impl std::fmt::Debug for PmGroupCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmGroupCache")
            .field("capacity", &self.capacity)
            .field("used", &self.used())
            .field("hits", &self.hits.get())
            .field("misses", &self.misses.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(tag: u8, n: usize, vlen: usize) -> Arc<Vec<OwnedEntry>> {
        Arc::new(
            (0..n)
                .map(|i| {
                    OwnedEntry::value(format!("t{tag:02}:{i:06}").into_bytes(), 1, vec![tag; vlen])
                })
                .collect(),
        )
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = PmGroupCache::new(1 << 20);
        let view = c.for_table(7);
        assert!(view.lookup(0).is_none());
        view.store(0, group(0, 4, 16));
        assert_eq!(view.lookup(0).unwrap().len(), 4);
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses.get(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
        assert!(c.used() > 0);
    }

    #[test]
    fn tables_do_not_alias() {
        let c = PmGroupCache::new(1 << 20);
        c.for_table(1).store(0, group(1, 2, 8));
        assert!(c.for_table(2).lookup(0).is_none());
        assert_eq!(c.for_table(1).lookup(0).unwrap()[0].value, vec![1u8; 8]);
    }

    #[test]
    fn purge_table_removes_only_that_table() {
        let c = PmGroupCache::new(1 << 20);
        c.for_table(1).store(0, group(1, 2, 8));
        c.for_table(1).store(1, group(1, 2, 8));
        c.for_table(2).store(0, group(2, 2, 8));
        c.purge_table(1);
        assert!(c.for_table(1).lookup(0).is_none());
        assert!(c.for_table(1).lookup(1).is_none());
        assert!(c.for_table(2).lookup(0).is_some());
        assert_eq!(c.invalidations.get(), 2);
    }

    #[test]
    fn charge_is_decoded_dram_size_not_encoded_payload() {
        let g = group(0, 4, 64);
        // The in-DRAM struct overhead per entry (two Vec headers +
        // seq/kind) dwarfs the 8-byte encoded trailer, so the decoded
        // charge must strictly exceed the raw PM payload size — the
        // old accounting, which a dense codec could undershoot by 3x+.
        let raw: usize = g.iter().map(|e| e.raw_len()).sum();
        assert!(
            entry_bytes(&g) > raw,
            "decoded charge {} must exceed encoded payload {raw}",
            entry_bytes(&g)
        );
        assert!(entry_bytes(&g) >= 64 + g.len() * std::mem::size_of::<OwnedEntry>());
    }

    #[test]
    fn disabled_cache_never_stores() {
        let c = PmGroupCache::disabled();
        c.for_table(1).store(0, group(1, 2, 8));
        assert!(c.for_table(1).lookup(0).is_none());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn eviction_respects_capacity_and_recency() {
        let unit = entry_bytes(&group(0, 4, 64));
        // One shard holds three groups; keys land in the same shard only
        // by table id, so pin a single table and distinct groups and size
        // the whole cache as SHARDS * (3.5 units) to make the *shard*
        // budget the binding constraint.
        let c = PmGroupCache::new(unit * 7 / 2 * SHARDS);
        let view = c.for_table(9);
        // Find three groups mapping to one shard by brute force.
        let key = |g: u32| GroupKey { table: 9, group: g };
        let target = c.shard_for(&key(0)) as *const _;
        let same_shard: Vec<u32> = (0..10_000u32)
            .filter(|&g| std::ptr::eq(c.shard_for(&key(g)), target))
            .take(4)
            .collect();
        assert_eq!(same_shard.len(), 4);
        for &g in &same_shard[..3] {
            view.store(g, group(0, 4, 64));
        }
        // Touch the first two so the third is stalest.
        view.lookup(same_shard[0]).unwrap();
        view.lookup(same_shard[1]).unwrap();
        view.store(same_shard[3], group(0, 4, 64));
        assert!(view.lookup(same_shard[2]).is_none(), "stalest was evicted");
        assert!(view.lookup(same_shard[0]).is_some());
        assert!(view.lookup(same_shard[3]).is_some());
        assert!(c.evictions.get() >= 1);
    }

    #[test]
    fn observed_access_counts_per_probe_outcomes() {
        let c = PmGroupCache::new(1 << 20);
        c.for_table(3).store(0, group(3, 2, 8));
        let obs = ObservedGroupAccess::new(c.for_table(3));
        assert!(obs.lookup(0).is_some());
        assert!(obs.lookup(1).is_none());
        obs.store(1, group(3, 2, 8));
        assert_eq!(obs.hits(), 1);
        assert_eq!(obs.misses(), 1);
        assert!(c.for_table(3).lookup(1).is_some(), "store delegated");
    }

    #[test]
    fn oversized_groups_are_not_cached() {
        let c = PmGroupCache::new(256 * SHARDS);
        c.for_table(1).store(0, group(1, 64, 4096));
        assert!(c.for_table(1).lookup(0).is_none());
        assert_eq!(c.used(), 0);
    }
}
