//! Vendored shim for the `crossbeam` crate, backed by `std::thread::scope`.
//!
//! Only the scoped-thread API surface used by this workspace is provided:
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...); ... })`. Panics from
//! scoped threads are reported through the returned `thread::Result`, like
//! the real crate.

pub mod thread {
    use std::any::Any;

    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle mirroring `crossbeam_utils::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to `'env`; the closure receives the scope
        /// so it can spawn further siblings, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope: all threads spawned within are joined before return.
    ///
    /// Returns `Err` with the panic payload if any scoped thread (or the
    /// closure itself) panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let hits = AtomicUsize::new(0);
        let out = crate::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(s.spawn(|_| hits.fetch_add(1, Ordering::SeqCst)));
            }
            for h in handles {
                h.join().unwrap();
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panic_in_scoped_thread_is_reported() {
        let res = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }
}
